#include "perm/standard.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::perm {
namespace {

TEST(StandardPermsTest, PerfectShuffleIsLeftRotation) {
  const IndexPermutation sigma = perfect_shuffle(4);
  for (std::uint64_t y = 0; y < 16; ++y) {
    EXPECT_EQ(sigma.apply(y), util::rotl1(y, 4));
  }
}

TEST(StandardPermsTest, InverseShuffleIsRightRotation) {
  const IndexPermutation inv = inverse_shuffle(4);
  for (std::uint64_t y = 0; y < 16; ++y) {
    EXPECT_EQ(inv.apply(y), util::rotr1(y, 4));
  }
}

TEST(StandardPermsTest, ShuffleTimesInverseIsIdentity) {
  for (int n = 1; n <= 8; ++n) {
    EXPECT_EQ(perfect_shuffle(n).after(inverse_shuffle(n)),
              IndexPermutation::identity(n));
  }
}

TEST(StandardPermsTest, ShuffleOrderIsN) {
  // sigma^n = identity and no smaller power is.
  for (int n = 2; n <= 8; ++n) {
    IndexPermutation power = IndexPermutation::identity(n);
    for (int i = 0; i < n; ++i) {
      power = perfect_shuffle(n).after(power);
      if (i + 1 < n) {
        EXPECT_NE(power, IndexPermutation::identity(n)) << "n=" << n;
      }
    }
    EXPECT_EQ(power, IndexPermutation::identity(n));
  }
}

TEST(StandardPermsTest, SubshuffleFixesHighBits) {
  const IndexPermutation s3 = subshuffle(5, 3);
  for (std::uint64_t y = 0; y < 32; ++y) {
    const std::uint64_t image = s3.apply(y);
    EXPECT_EQ(image >> 3, y >> 3);                       // high bits fixed
    EXPECT_EQ(image & 0b111, util::rotl1(y & 0b111, 3));  // low rotated
  }
}

TEST(StandardPermsTest, SubshuffleFullWidthIsShuffle) {
  for (int n = 1; n <= 6; ++n) {
    EXPECT_EQ(subshuffle(n, n), perfect_shuffle(n));
    EXPECT_EQ(inverse_subshuffle(n, n), inverse_shuffle(n));
  }
}

TEST(StandardPermsTest, Subshuffle1IsIdentity) {
  EXPECT_EQ(subshuffle(4, 1), IndexPermutation::identity(4));
}

TEST(StandardPermsTest, SubshuffleValidation) {
  EXPECT_THROW((void)subshuffle(4, 0), std::invalid_argument);
  EXPECT_THROW((void)subshuffle(4, 5), std::invalid_argument);
}

TEST(StandardPermsTest, ButterflySwapsBits) {
  const IndexPermutation b2 = butterfly(4, 2);
  for (std::uint64_t y = 0; y < 16; ++y) {
    std::uint64_t expected = y;
    const unsigned bit0 = util::get_bit(y, 0);
    const unsigned bit2 = util::get_bit(y, 2);
    expected = util::set_bit(expected, 0, bit2);
    expected = util::set_bit(expected, 2, bit0);
    EXPECT_EQ(b2.apply(y), expected);
  }
  EXPECT_EQ(butterfly(4, 0), IndexPermutation::identity(4));
  EXPECT_THROW((void)butterfly(4, 4), std::invalid_argument);
}

TEST(StandardPermsTest, ButterflyIsInvolution) {
  for (int k = 1; k < 5; ++k) {
    EXPECT_EQ(butterfly(5, k).after(butterfly(5, k)),
              IndexPermutation::identity(5));
  }
}

TEST(StandardPermsTest, BitReversal) {
  const IndexPermutation rho = bit_reversal(4);
  for (std::uint64_t y = 0; y < 16; ++y) {
    EXPECT_EQ(rho.apply(y), util::reverse_bits(y, 4));
  }
  EXPECT_EQ(rho.after(rho), IndexPermutation::identity(4));
}

TEST(StandardPermsTest, ExchangeIsXor1) {
  const Permutation ex = exchange(3);
  for (std::uint32_t y = 0; y < 8; ++y) {
    EXPECT_EQ(ex(y), y ^ 1U);
  }
}

TEST(StandardPermsTest, XorTranslationValidation) {
  EXPECT_THROW((void)xor_translation(3, 0b1000), std::invalid_argument);
  const Permutation t = xor_translation(3, 0b101);
  for (std::uint32_t y = 0; y < 8; ++y) {
    EXPECT_EQ(t(y), y ^ 0b101U);
  }
}

TEST(StandardPermsTest, DescribeNamesTheZoo) {
  EXPECT_EQ(describe(perfect_shuffle(5)), "sigma");
  EXPECT_EQ(describe(inverse_shuffle(5)), "sigma^-1");
  EXPECT_EQ(describe(bit_reversal(5)), "rho");
  EXPECT_EQ(describe(subshuffle(5, 3)), "sigma_3");
  EXPECT_EQ(describe(inverse_subshuffle(5, 4)), "sigma_4^-1");
  EXPECT_EQ(describe(butterfly(5, 2)), "beta_2");
  EXPECT_EQ(describe(IndexPermutation::identity(5)), "identity");
}

TEST(StandardPermsTest, WidthValidation) {
  EXPECT_THROW((void)perfect_shuffle(0), std::invalid_argument);
  EXPECT_THROW((void)bit_reversal(-1), std::invalid_argument);
  EXPECT_THROW((void)exchange(0), std::invalid_argument);
}

}  // namespace
}  // namespace mineq::perm
