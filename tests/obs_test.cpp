/// \file obs_test.cpp
/// \brief The observability collectors: stall attribution partitions
/// hol_blocking_cycles exactly, the per-flow recorders account every
/// delivered packet, probes have the declared shape, traces nest, and —
/// the core contract — enabling any collector never changes a simulation
/// outcome (obs is strictly passive).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fault/fault_model.hpp"
#include "min/networks.hpp"
#include "multipath/multipath_wiring.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace mineq::sim {
namespace {

using fault::FaultKind;
using fault::FaultMask;
using fault::FaultSpec;
using min::MultiPathWiring;
using min::NetworkKind;

[[nodiscard]] SimConfig base_config(SwitchingMode mode) {
  SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.7;
  config.warmup_cycles = 50;
  config.measure_cycles = 300;
  config.seed = 99;
  config.packet_length = 3;
  config.queue_capacity = 2;
  config.lanes = 2;
  config.lane_depth = 2;
  return config;
}

[[nodiscard]] obs::ObsConfig all_collectors() {
  obs::ObsConfig config;
  config.probe_stride = 25;
  config.flow_stats = true;
  config.trace_sample = 4;
  return config;
}

// ------------------------------------------------------- stall attribution

/// The invariant the whole attribution design serves: the five cause
/// counters partition hol_blocking_cycles with no remainder, on every
/// policy instantiation of both disciplines.
TEST(ObsStallTest, CausesPartitionHolCyclesExactly) {
  const Engine omega(min::build_network(NetworkKind::kOmega, 5));
  const FaultMask mask = fault::build_fault_mask(
      omega.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.08, 7});
  const Engine benes{MultiPathWiring::benes(4, 2)};
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    SimConfig config = base_config(mode);
    config.obs = all_collectors();

    SCOPED_TRACE(switching_mode_name(mode));
    const SimResult pristine = omega.run(Pattern::kBitReversal, config);
    EXPECT_GT(pristine.hol_blocking_cycles, 0U);
    EXPECT_EQ(pristine.stall_attributed(), pristine.hol_blocking_cycles);

    const SimResult faulted = omega.run(Pattern::kUniform, config, &mask);
    EXPECT_EQ(faulted.stall_attributed(), faulted.hol_blocking_cycles);

    SimConfig credits = config;
    credits.credits.enabled = true;
    credits.credits.return_latency = 3;
    const SimResult credited = omega.run(Pattern::kUniform, credits);
    EXPECT_EQ(credited.stall_attributed(), credited.hol_blocking_cycles);

    SimConfig multipath = config;
    multipath.path_policy = PathPolicy::kHash;
    const SimResult mp = benes.run(Pattern::kUniform, multipath);
    EXPECT_EQ(mp.stall_attributed(), mp.hol_blocking_cycles);
  }
}

TEST(ObsStallTest, CreditStallsAttributedOnCreditRuns) {
  // A tight credit loop must surface kZeroCredits mass — the split is
  // informative, not vacuously all lost-arbitration.
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.obs.probe_stride = 50;
  config.credits.enabled = true;
  config.credits.return_latency = 8;
  config.injection_rate = 1.0;
  const SimResult result = engine.run(Pattern::kBitReversal, config);
  EXPECT_EQ(result.stall_attributed(), result.hol_blocking_cycles);
  EXPECT_GT(result.stall_zero_credits, 0U);
}

TEST(ObsStallTest, DominantCauseTokenIsRegistered) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.obs.flow_stats = true;
  const SimResult result = engine.run(Pattern::kBitReversal, config);
  bool found = false;
  for (std::size_t i = 0; i < obs::kStallCauseCount; ++i) {
    const auto cause = static_cast<obs::StallCause>(i);
    if (obs::stall_cause_name(result.dominant_stall_cause()) ==
        std::string(obs::stall_cause_name(cause))) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------- passivity

/// Enabling every collector must not change any simulation outcome: the
/// instrumented instantiations produce the same counters, latencies and
/// RNG draws as the uninstrumented fast path.
TEST(ObsPassivityTest, CollectorsNeverPerturbResults) {
  const Engine omega(min::build_network(NetworkKind::kOmega, 5));
  const FaultMask mask = fault::build_fault_mask(
      omega.wiring(), FaultSpec{FaultKind::kSwitchKills, 0.08, 3});
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    SCOPED_TRACE(switching_mode_name(mode));
    SimConfig plain = base_config(mode);
    SimConfig instrumented = plain;
    instrumented.obs = all_collectors();
    for (const FaultMask* m : {static_cast<const FaultMask*>(nullptr), &mask}) {
      const SimResult a = omega.run(Pattern::kBitReversal, plain, m);
      const SimResult b = omega.run(Pattern::kBitReversal, instrumented, m);
      EXPECT_EQ(a.offered, b.offered);
      EXPECT_EQ(a.injected, b.injected);
      EXPECT_EQ(a.delivered, b.delivered);
      EXPECT_EQ(a.flits_injected, b.flits_injected);
      EXPECT_EQ(a.flits_delivered, b.flits_delivered);
      EXPECT_EQ(a.flits_in_flight, b.flits_in_flight);
      EXPECT_EQ(a.hol_blocking_cycles, b.hol_blocking_cycles);
      EXPECT_EQ(a.credit_stall_cycles, b.credit_stall_cycles);
      EXPECT_EQ(a.packets_dropped_faulted, b.packets_dropped_faulted);
      EXPECT_EQ(a.packets_rerouted, b.packets_rerouted);
      EXPECT_EQ(a.latency.count(), b.latency.count());
      EXPECT_EQ(a.latency.mean(), b.latency.mean());
      EXPECT_EQ(a.latency.max(), b.latency.max());
      EXPECT_EQ(a.link_utilization, b.link_utilization);
    }
  }
}

// ----------------------------------------------------------------- flows

TEST(ObsFlowTest, RecorderAccountsEveryDeliveredPacket) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    SCOPED_TRACE(switching_mode_name(mode));
    SimConfig config = base_config(mode);
    config.obs.flow_stats = true;
    const SimResult result = engine.run(Pattern::kUniform, config);
    ASSERT_FALSE(result.flows.empty());
    EXPECT_EQ(result.flows.terminals, engine.terminals());
    std::uint64_t recorded = 0;
    for (const obs::FlowStat& flow : result.flows.flows) {
      EXPECT_GT(flow.count, 0U);
      EXPECT_LE(flow.p50, flow.p99);
      EXPECT_LE(flow.p99, flow.p999);
      recorded += flow.count;
    }
    EXPECT_EQ(recorded, result.delivered);
    EXPECT_GT(result.flows.worst_p99, 0.0);
    // The advertised worst flow is a real flow with that p99.
    bool worst_found = false;
    for (const obs::FlowStat& flow : result.flows.flows) {
      if (flow.src == result.flows.worst_src &&
          flow.dst == result.flows.worst_dst) {
        EXPECT_EQ(flow.p99, result.flows.worst_p99);
        worst_found = true;
      }
    }
    EXPECT_TRUE(worst_found);
  }
}

TEST(ObsFlowTest, PerServiceLevelRowsCoverCreditRuns) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.obs.flow_stats = true;
  config.credits.enabled = true;
  config.credits.sl_map = {0, 1};
  const SimResult result = engine.run(Pattern::kUniform, config);
  ASSERT_EQ(result.flows.per_sl.size(), 2U);
  std::uint64_t recorded = 0;
  for (const obs::FlowStat& sl : result.flows.per_sl) recorded += sl.count;
  EXPECT_EQ(recorded, result.delivered);
}

TEST(ObsFlowTest, ValidateRejectsOversizedFlowTables) {
  obs::ObsConfig flows_on;
  flows_on.flow_stats = true;
  EXPECT_NO_THROW(flows_on.validate(obs::kMaxFlowTerminals));
  EXPECT_THROW(flows_on.validate(obs::kMaxFlowTerminals + 1),
               std::invalid_argument);
  obs::ObsConfig probes_only;
  probes_only.probe_stride = 10;
  EXPECT_NO_THROW(probes_only.validate(1ULL << 20));
}

// ---------------------------------------------------------------- probes

TEST(ObsProbeTest, SeriesHasDeclaredShape) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    SCOPED_TRACE(switching_mode_name(mode));
    SimConfig config = base_config(mode);
    config.obs.probe_stride = 50;
    const SimResult result = engine.run(Pattern::kUniform, config);
    const obs::ProbeSeries& probes = result.probes;
    ASSERT_FALSE(probes.empty());
    EXPECT_EQ(probes.stride, 50U);
    EXPECT_EQ(probes.stages, 5);
    EXPECT_EQ(probes.cells, 16U);
    // 300 measured cycles / stride 50 = 6 whole windows.
    EXPECT_EQ(probes.samples, 6U);
    const std::size_t slots = probes.filled();
    ASSERT_EQ(probes.cycle.size(), probes.capacity);
    ASSERT_EQ(probes.occupancy.size(), probes.capacity * 5);
    ASSERT_EQ(probes.heatmap.size(), 5U * 16U);
    for (std::size_t i = 0; i < slots * 5; ++i) {
      EXPECT_GE(probes.occupancy[i], 0.0);
      EXPECT_LE(probes.occupancy[i], 1.0);
      EXPECT_GE(probes.link_utilization[i], 0.0);
      // Store-and-forward moves whole packets (packet_length flit-cycles
      // per link-cycle), so utilization is bounded by the packet length,
      // not 1.
      EXPECT_LE(probes.link_utilization[i],
                static_cast<double>(config.packet_length));
    }
    for (const double h : probes.heatmap) {
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
    }
    // Window cycles advance by exactly one stride.
    for (std::size_t w = 1; w < slots; ++w) {
      EXPECT_EQ(probes.cycle[w] - probes.cycle[w - 1], probes.stride);
    }
    EXPECT_NE(probes.csv().find("cycle,stage,occupancy"), std::string::npos);
    EXPECT_NE(probes.heatmap_csv().find("stage,cell,occupancy"),
              std::string::npos);
  }
}

// ----------------------------------------------------------------- traces

TEST(ObsTraceTest, EventsNestPerPacket) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    SCOPED_TRACE(switching_mode_name(mode));
    SimConfig config = base_config(mode);
    config.obs.trace_sample = 2;
    const SimResult result = engine.run(Pattern::kUniform, config);
    ASSERT_FALSE(result.trace.empty());
    // Emission order: cycles never run backwards.
    for (std::size_t i = 1; i < result.trace.size(); ++i) {
      EXPECT_LE(result.trace[i - 1].cycle, result.trace[i].cycle);
    }
    // Group by packet identity and check slice nesting.
    std::map<std::pair<std::uint64_t, std::uint32_t>,
             std::vector<const obs::TraceEvent*>>
        tracks;
    for (const obs::TraceEvent& event : result.trace) {
      EXPECT_TRUE(obs::trace_picked(2, event.src, event.inject_cycle));
      tracks[{event.inject_cycle, event.src}].push_back(&event);
    }
    EXPECT_GT(tracks.size(), 4U);
    std::size_t completed = 0;
    for (const auto& [key, events] : tracks) {
      int packet_open = 0;
      int stage_open = 0;
      for (const obs::TraceEvent* event : events) {
        switch (event->kind) {
          case obs::TraceEventKind::kPacketBegin:
            EXPECT_EQ(packet_open, 0);
            ++packet_open;
            break;
          case obs::TraceEventKind::kPacketEnd:
            EXPECT_EQ(stage_open, 0);  // stages close before the packet
            --packet_open;
            break;
          case obs::TraceEventKind::kStageBegin:
            EXPECT_EQ(packet_open, 1);
            ++stage_open;
            break;
          case obs::TraceEventKind::kStageEnd:
            --stage_open;
            break;
          default:  // instants may appear anywhere inside the packet
            EXPECT_EQ(packet_open, 1);
            break;
        }
        EXPECT_GE(packet_open, 0);
        EXPECT_GE(stage_open, 0);
        EXPECT_LE(stage_open, 1);  // the head is in one stage at a time
      }
      if (!events.empty() &&
          events.back()->kind == obs::TraceEventKind::kPacketEnd) {
        ++completed;
      }
    }
    EXPECT_GT(completed, 0U);
    const std::string json = obs::trace_json(result.trace, 0, "test");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  }
}

TEST(ObsTraceTest, SampledSubsetIsDeterministicAndSparse) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.obs.trace_sample = 8;
  const SimResult once = engine.run(Pattern::kUniform, config);
  const SimResult twice = engine.run(Pattern::kUniform, config);
  ASSERT_EQ(once.trace.size(), twice.trace.size());
  for (std::size_t i = 0; i < once.trace.size(); ++i) {
    EXPECT_EQ(once.trace[i].cycle, twice.trace[i].cycle);
    EXPECT_EQ(once.trace[i].src, twice.trace[i].src);
    EXPECT_EQ(once.trace[i].kind, twice.trace[i].kind);
  }
  // 1-in-8 sampling: far fewer traced packets than injected ones.
  std::map<std::pair<std::uint64_t, std::uint32_t>, int> tracks;
  for (const obs::TraceEvent& event : once.trace) {
    tracks[{event.inject_cycle, event.src}] = 1;
  }
  EXPECT_LT(tracks.size(), once.injected / 2);
}

}  // namespace
}  // namespace mineq::sim
