#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mineq::util {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, RespectsRange) {
  std::atomic<std::uint64_t> sum(0);
  parallel_for(10, 20, [&](std::size_t i) { sum += i; }, 3);
  EXPECT_EQ(sum.load(), 145U);  // 10 + 11 + ... + 19
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> calls(0);
  parallel_for(5, 5, [&](std::size_t) { ++calls; }, 2);
  parallel_for(7, 3, [&](std::size_t) { ++calls; }, 2);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleThreadMatchesSerial) {
  std::vector<int> order;
  parallel_for(0, 8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  std::atomic<int> done(0);
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3U);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { ++done; });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 50);
  }
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> done(0);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { ++done; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

}  // namespace
}  // namespace mineq::util
