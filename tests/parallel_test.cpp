#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace mineq::util {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, RespectsRange) {
  std::atomic<std::uint64_t> sum(0);
  parallel_for(10, 20, [&](std::size_t i) { sum += i; }, 3);
  EXPECT_EQ(sum.load(), 145U);  // 10 + 11 + ... + 19
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> calls(0);
  parallel_for(5, 5, [&](std::size_t) { ++calls; }, 2);
  parallel_for(7, 3, [&](std::size_t) { ++calls; }, 2);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleThreadMatchesSerial) {
  std::vector<int> order;
  parallel_for(0, 8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  std::atomic<int> done(0);
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3U);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { ++done; });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 50);
  }
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> done(0);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { ++done; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, RunTeamRunsEveryIndexOnce) {
  ThreadPool pool(1);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{5}, std::size_t{8}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.run_team(n, [&hits](std::size_t index, std::size_t size) {
      ASSERT_EQ(size, hits.size());
      ++hits[index];
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, RunTeamReusesThreadsAcrossCalls) {
  ThreadPool pool(1);
  std::atomic<int> total(0);
  // Repeated calls (including shrinking and regrowing the active size)
  // must keep the dedicated team consistent — this is the cycle-loop
  // usage pattern of the sharded simulation driver.
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(1 + round % 4);
    pool.run_team(n, [&total](std::size_t, std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 200 / 4 * (1 + 2 + 3 + 4));
}

TEST(ThreadPoolTest, RunTeamCallerIsWorkerZero) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run_team(3, [&](std::size_t index, std::size_t) {
    if (index == 0) seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(SpinBarrierTest, RendezvousOrdersPhases) {
  // Each worker increments its phase counter, waits, then checks every
  // other worker finished the same phase — a reordering or missed
  // release shows up as a torn read.
  constexpr std::size_t kParties = 4;
  constexpr int kPhases = 500;
  SpinBarrier barrier(kParties);
  std::vector<std::atomic<int>> phase(kParties);
  std::atomic<int> failures(0);
  ThreadPool pool(1);
  pool.run_team(kParties, [&](std::size_t w, std::size_t n) {
    for (int p = 1; p <= kPhases; ++p) {
      phase[w].store(p, std::memory_order_relaxed);
      barrier.arrive_and_wait();
      for (std::size_t other = 0; other < n; ++other) {
        if (phase[other].load(std::memory_order_relaxed) < p) ++failures;
      }
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(SpinBarrierTest, SinglePartyNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 10; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

}  // namespace
}  // namespace mineq::util
