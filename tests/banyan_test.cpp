#include "min/banyan.hpp"

#include <gtest/gtest.h>

#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(BanyanTest, BaselineIsBanyan) {
  for (int n = 1; n <= 8; ++n) {
    EXPECT_TRUE(is_banyan(baseline_network(n))) << "n=" << n;
  }
}

TEST(BanyanTest, PathCountsFromSource) {
  const MIDigraph g = baseline_network(4);
  for (std::uint32_t u = 0; u < g.cells_per_stage(); ++u) {
    const auto counts = path_counts_from(g, u, 100);
    for (std::uint64_t c : counts) {
      EXPECT_EQ(c, 1U);
    }
  }
  EXPECT_THROW((void)path_counts_from(g, 8, 2), std::invalid_argument);
}

TEST(BanyanTest, DegeneratePipidStageBreaksBanyan) {
  // Fig. 5: a stage whose PIPID has theta^{-1}(0) = 0 produces double
  // links; parallel arcs mean two paths, so the Banyan property fails.
  const int n = 4;
  std::vector<perm::IndexPermutation> seq;
  seq.push_back(perm::perfect_shuffle(n));
  // sigma^{-1} shifted... use a PIPID fixing bit 0: subshuffle of the high
  // bits only, realized as conjugate; simplest: identity wiring.
  seq.push_back(perm::IndexPermutation::identity(n));
  seq.push_back(perm::perfect_shuffle(n));
  const MIDigraph g = network_from_pipids(seq);
  EXPECT_TRUE(g.is_valid());  // degrees are fine (double links)
  EXPECT_FALSE(is_banyan(g));
  const auto failure = banyan_failure(g);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->path_count, 1U);
}

TEST(BanyanTest, DisconnectedPairsDetected) {
  // Two parallel identity chains never mix: most pairs unreachable.
  std::vector<perm::IndexPermutation> seq(
      3, perm::IndexPermutation::identity(4));
  const MIDigraph g = network_from_pipids(seq);
  const auto failure = banyan_failure(g);
  ASSERT_TRUE(failure.has_value());
}

TEST(BanyanTest, DoublingAgreesWithCountingOnRandomNetworks) {
  MINEQ_SEEDED_RNG(rng, 61);
  for (int n = 2; n <= 6; ++n) {
    for (int trial = 0; trial < 20; ++trial) {
      const MIDigraph g = random_independent_network(n, rng);
      EXPECT_EQ(is_banyan(g), is_banyan_doubling(g))
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(BanyanTest, DoublingAgreesOnClassicalNetworks) {
  for (int n = 2; n <= 7; ++n) {
    for (NetworkKind kind : all_network_kinds()) {
      const MIDigraph g = build_network(kind, n);
      EXPECT_TRUE(is_banyan(g)) << network_name(kind) << " n=" << n;
      EXPECT_TRUE(is_banyan_doubling(g)) << network_name(kind);
    }
  }
}

TEST(BanyanTest, ParallelCheckMatchesSequential) {
  MINEQ_SEEDED_RNG(rng, 67);
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::random_banyan_pipid(7, rng);
    EXPECT_TRUE(is_banyan(g, /*threads=*/2));
    const MIDigraph bad = random_independent_network(7, rng);
    EXPECT_EQ(is_banyan(bad, 1), is_banyan(bad, 2));
  }
}

TEST(BanyanTest, SingleStageIsTriviallyBanyan) {
  EXPECT_TRUE(is_banyan(MIDigraph(1, {})));
}

}  // namespace
}  // namespace mineq::min
