#include "graph/render.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mineq::graph {
namespace {

LayeredDigraph small() {
  LayeredDigraph g;
  g.adj = {{{0, 1}, {0, 1}}, {{}, {}}};
  return g;
}

TEST(RenderTest, AdjacencyListing) {
  const std::string s = render_adjacency(small());
  EXPECT_NE(s.find("1:0 -> 0 1"), std::string::npos);
  EXPECT_NE(s.find("1:1 -> 0 1"), std::string::npos);
}

TEST(RenderTest, DotContainsRanksAndArcs) {
  const std::string dot = render_dot(small());
  EXPECT_NE(dot.find("digraph MIN"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("s0_0 -> s1_0"), std::string::npos);
  EXPECT_NE(dot.find("s0_1 -> s1_1"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
}

TEST(RenderTest, DotUsesCustomLabels) {
  const std::string dot =
      render_dot(small(), {{"(0)", "(1)"}, {"(a)", "(b)"}});
  EXPECT_NE(dot.find("label=\"(0)\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"(b)\""), std::string::npos);
}

TEST(RenderTest, AsciiContainsAllLabels) {
  AsciiOptions options;
  options.labels = {{"(0,0)", "(0,1)"}, {"(1,0)", "(1,1)"}};
  const std::string art = render_ascii(small(), options);
  EXPECT_NE(art.find("(0,0)"), std::string::npos);
  EXPECT_NE(art.find("(1,1)"), std::string::npos);
  // Some arc ink must be present.
  EXPECT_TRUE(art.find('\\') != std::string::npos ||
              art.find('/') != std::string::npos ||
              art.find('-') != std::string::npos);
}

TEST(RenderTest, AsciiDefaultLabels) {
  const std::string art = render_ascii(small());
  EXPECT_NE(art.find("[0]"), std::string::npos);
  EXPECT_NE(art.find("[1]"), std::string::npos);
}

TEST(RenderTest, AsciiRejectsHugeGraphs) {
  LayeredDigraph g;
  g.adj.resize(1);
  g.adj[0].resize(100);
  EXPECT_THROW((void)render_ascii(g), std::invalid_argument);
}

TEST(RenderTest, EmptyGraph) {
  EXPECT_EQ(render_ascii(LayeredDigraph{}), "");
  EXPECT_EQ(render_adjacency(LayeredDigraph{}), "");
}

}  // namespace
}  // namespace mineq::graph
