#include "gf2/bitvec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

namespace mineq::gf2 {
namespace {

TEST(BitVecTest, ConstructionValidation) {
  EXPECT_NO_THROW(BitVec(0b101, 3));
  EXPECT_THROW((void)BitVec(0b101, 2), std::invalid_argument);  // stray bit
  EXPECT_THROW((void)BitVec(1, 0), std::invalid_argument);
  EXPECT_THROW((void)BitVec(0, -1), std::invalid_argument);
  EXPECT_THROW((void)BitVec(0, 60), std::invalid_argument);
}

TEST(BitVecTest, ZeroAndUnit) {
  EXPECT_TRUE(BitVec::zero(4).is_zero());
  EXPECT_EQ(BitVec::unit(2, 4).bits(), 0b100U);
  EXPECT_THROW((void)BitVec::unit(4, 4), std::invalid_argument);
  EXPECT_THROW((void)BitVec::unit(-1, 4), std::invalid_argument);
}

TEST(BitVecTest, XorGroupLaws) {
  const BitVec a(0b1010, 4);
  const BitVec b(0b0110, 4);
  const BitVec zero = BitVec::zero(4);
  EXPECT_EQ((a ^ b).bits(), 0b1100U);
  EXPECT_EQ(a ^ zero, a);
  EXPECT_EQ(a ^ a, zero);        // every element is its own inverse
  EXPECT_EQ(a ^ b, b ^ a);       // commutativity
  EXPECT_THROW((void)(a ^ BitVec(0, 3)), std::invalid_argument);
}

TEST(BitVecTest, BitAccess) {
  const BitVec v(0b0110, 4);
  EXPECT_EQ(v.bit(0), 0U);
  EXPECT_EQ(v.bit(1), 1U);
  EXPECT_EQ(v.bit(2), 1U);
  EXPECT_EQ(v.bit(3), 0U);
  EXPECT_THROW((void)v.bit(4), std::invalid_argument);
  EXPECT_EQ(v.with_bit(0, 1).bits(), 0b0111U);
  EXPECT_EQ(v.with_bit(2, 0).bits(), 0b0010U);
}

TEST(BitVecTest, WeightAndDot) {
  EXPECT_EQ(BitVec(0b1011, 4).weight(), 3);
  EXPECT_EQ(BitVec::zero(4).weight(), 0);
  EXPECT_EQ(BitVec(0b1010, 4).dot(BitVec(0b0010, 4)), 1U);
  EXPECT_EQ(BitVec(0b1010, 4).dot(BitVec(0b1010, 4)), 0U);
}

TEST(BitVecTest, ConcatAndDrop) {
  const BitVec cell(0b101, 3);
  const BitVec port(1, 1);
  const BitVec link = cell.concat(port);
  EXPECT_EQ(link.width(), 4);
  EXPECT_EQ(link.bits(), 0b1011U);
  EXPECT_EQ(link.drop_low(1), cell);
  EXPECT_THROW((void)link.drop_low(5), std::invalid_argument);
}

TEST(BitVecTest, TupleFormatting) {
  EXPECT_EQ(BitVec(0b011, 3).to_tuple(), "(0,1,1)");
  EXPECT_EQ(BitVec(0b011, 3).to_binary(), "011");
  EXPECT_EQ(BitVec::zero(0).to_tuple(), "()");
}

TEST(BitVecTest, ParseRoundTrip) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    const BitVec original(v, 4);
    EXPECT_EQ(BitVec::parse(original.to_tuple()), original);
    EXPECT_EQ(BitVec::parse(original.to_binary()), original);
  }
}

TEST(BitVecTest, ParseRejectsMalformed) {
  EXPECT_THROW((void)BitVec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)BitVec::parse("(1,2)"), std::invalid_argument);
  EXPECT_THROW((void)BitVec::parse("(1,"), std::invalid_argument);
  EXPECT_THROW((void)BitVec::parse("10a"), std::invalid_argument);
  EXPECT_THROW((void)BitVec::parse("(1,1,)"), std::invalid_argument);
}

TEST(BitVecTest, Ordering) {
  EXPECT_LT(BitVec(1, 3), BitVec(2, 3));
  EXPECT_NE(BitVec(1, 3), BitVec(1, 4));
}

TEST(BitVecTest, Hashable) {
  std::unordered_set<BitVec> set;
  set.insert(BitVec(1, 3));
  set.insert(BitVec(1, 3));
  set.insert(BitVec(1, 4));
  EXPECT_EQ(set.size(), 2U);
}

}  // namespace
}  // namespace mineq::gf2
