#include "gf2/affine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::gf2 {
namespace {

TEST(AffineMapTest, IdentityAndTranslation) {
  const AffineMap id = AffineMap::identity(3);
  const AffineMap tr = AffineMap::translation(0b101, 3);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(id.apply(x), x);
    EXPECT_EQ(tr.apply(x), x ^ 0b101);
  }
  EXPECT_TRUE(id.is_linear());
  EXPECT_FALSE(tr.is_linear());
  EXPECT_TRUE(tr.is_bijection());
}

TEST(AffineMapTest, ConstantWidthValidation) {
  EXPECT_THROW((void)AffineMap(Matrix::identity(2), 0b100), std::invalid_argument);
}

TEST(AffineMapTest, CompositionMatchesPointwise) {
  MINEQ_SEEDED_RNG(rng, 3);
  for (int trial = 0; trial < 20; ++trial) {
    const AffineMap a = AffineMap::random_bijection(4, rng);
    const AffineMap b = AffineMap::random_bijection(4, rng);
    const AffineMap ab = a.after(b);
    for (std::uint64_t x = 0; x < 16; ++x) {
      EXPECT_EQ(ab.apply(x), a.apply(b.apply(x)));
    }
  }
}

TEST(AffineMapTest, InverseRoundTrip) {
  MINEQ_SEEDED_RNG(rng, 5);
  for (int trial = 0; trial < 20; ++trial) {
    const AffineMap a = AffineMap::random_bijection(5, rng);
    const auto inv = a.inverse();
    ASSERT_TRUE(inv.has_value());
    for (std::uint64_t x = 0; x < 32; ++x) {
      EXPECT_EQ(inv->apply(a.apply(x)), x);
      EXPECT_EQ(a.apply(inv->apply(x)), x);
    }
  }
}

TEST(AffineMapTest, NonBijectiveHasNoInverse) {
  const AffineMap zero(Matrix(3, 3), 0b010);
  EXPECT_FALSE(zero.is_bijection());
  EXPECT_FALSE(zero.inverse().has_value());
}

TEST(AffineMapTest, ToTableMatchesApply) {
  MINEQ_SEEDED_RNG(rng, 7);
  const AffineMap a = AffineMap::random_bijection(6, rng);
  const auto table = a.to_table();
  ASSERT_EQ(table.size(), 64U);
  for (std::uint64_t x = 0; x < 64; ++x) {
    EXPECT_EQ(table[x], a.apply(x));
  }
}

TEST(FitAffineTest, RecoversRandomAffineMaps) {
  MINEQ_SEEDED_RNG(rng, 11);
  for (int w = 0; w <= 7; ++w) {
    for (int trial = 0; trial < 10; ++trial) {
      const Matrix m = Matrix::random(w, w, rng);
      const std::uint64_t c = rng.next() & ((std::uint64_t{1} << w) - 1);
      const AffineMap original(m, c);
      const auto fitted = fit_affine(original.to_table(), w, w);
      ASSERT_TRUE(fitted.has_value()) << "w=" << w;
      EXPECT_EQ(*fitted, original);
    }
  }
}

TEST(FitAffineTest, RejectsNonAffine) {
  // AND is not affine over GF(2)^2 -> GF(2).
  const std::vector<std::uint32_t> and_table = {0, 0, 0, 1};
  EXPECT_FALSE(fit_affine(and_table, 2, 1).has_value());
  EXPECT_FALSE(is_affine(and_table, 2, 1));
  // OR is not affine either.
  const std::vector<std::uint32_t> or_table = {0, 1, 1, 1};
  EXPECT_FALSE(is_affine(or_table, 2, 1));
  // XOR is affine (linear).
  const std::vector<std::uint32_t> xor_table = {0, 1, 1, 0};
  EXPECT_TRUE(is_affine(xor_table, 2, 1));
}

TEST(FitAffineTest, RejectsOutOfRangeValues) {
  const std::vector<std::uint32_t> wide = {0, 2};  // 2 needs out_width 2
  EXPECT_FALSE(fit_affine(wide, 1, 1).has_value());
}

TEST(FitAffineTest, ValidatesShape) {
  EXPECT_THROW((void)fit_affine({0, 0, 0}, 2, 2), std::invalid_argument);
  EXPECT_THROW((void)fit_affine({0}, -1, 2), std::invalid_argument);
}

TEST(FitAffineTest, DifferentInOutWidths) {
  // Projection (drop high bit): 3 bits -> 2 bits, linear.
  std::vector<std::uint32_t> proj(8);
  for (std::uint32_t x = 0; x < 8; ++x) proj[x] = x & 0b11;
  const auto fitted = fit_affine(proj, 3, 2);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_EQ(fitted->in_width(), 3);
  EXPECT_EQ(fitted->out_width(), 2);
  for (std::uint32_t x = 0; x < 8; ++x) {
    EXPECT_EQ(fitted->apply(x), x & 0b11U);
  }
}

TEST(AffineMapTest, StrMentionsConstant) {
  const AffineMap tr = AffineMap::translation(0b1, 2);
  EXPECT_NE(tr.str().find("01"), std::string::npos);
}

}  // namespace
}  // namespace mineq::gf2
