#include "perm/permutation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::perm {
namespace {

TEST(PermutationTest, IdentityConstruction) {
  const Permutation p(5);
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.size(), 5U);
  for (std::uint32_t x = 0; x < 5; ++x) {
    EXPECT_EQ(p.apply(x), x);
  }
}

TEST(PermutationTest, RejectsNonBijections) {
  EXPECT_THROW((void)Permutation({0, 0}), std::invalid_argument);
  EXPECT_THROW((void)Permutation({0, 2}), std::invalid_argument);
  EXPECT_THROW((void)Permutation({1, 2, 3}), std::invalid_argument);
}

TEST(PermutationTest, ApplyRangeChecked) {
  const Permutation p(3);
  EXPECT_THROW((void)p.apply(3), std::invalid_argument);
}

TEST(PermutationTest, ComposeOrder) {
  // p = (0 1), q = (1 2). compose(p, q)(x) = p(q(x)).
  const Permutation p = Permutation::from_cycles(3, {{0, 1}});
  const Permutation q = Permutation::from_cycles(3, {{1, 2}});
  const Permutation pq = p.compose(q);
  EXPECT_EQ(pq.apply(0), 1U);  // q:0->0, p:0->1
  EXPECT_EQ(pq.apply(1), 2U);  // q:1->2, p:2->2
  EXPECT_EQ(pq.apply(2), 0U);  // q:2->1, p:1->0
}

TEST(PermutationTest, InverseRoundTrip) {
  MINEQ_SEEDED_RNG(rng, 3);
  for (int trial = 0; trial < 10; ++trial) {
    const Permutation p = Permutation::random(20, rng);
    const Permutation inv = p.inverse();
    EXPECT_TRUE(p.compose(inv).is_identity());
    EXPECT_TRUE(inv.compose(p).is_identity());
  }
}

TEST(PermutationTest, FromCyclesValidation) {
  const Permutation p = Permutation::from_cycles(5, {{0, 1, 2}, {3, 4}});
  EXPECT_EQ(p.apply(0), 1U);
  EXPECT_EQ(p.apply(2), 0U);
  EXPECT_EQ(p.apply(3), 4U);
  EXPECT_EQ(p.apply(4), 3U);
  EXPECT_THROW((void)Permutation::from_cycles(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW((void)Permutation::from_cycles(3, {{0, 1}, {1, 2}}),
               std::invalid_argument);
}

TEST(PermutationTest, CyclesRoundTrip) {
  MINEQ_SEEDED_RNG(rng, 7);
  for (int trial = 0; trial < 10; ++trial) {
    const Permutation p = Permutation::random(12, rng);
    const auto cycles = p.cycles();
    const Permutation rebuilt = Permutation::from_cycles(12, cycles);
    EXPECT_EQ(rebuilt, p);
  }
}

TEST(PermutationTest, OrderExamples) {
  EXPECT_EQ(Permutation(4).order(), 1U);
  EXPECT_EQ(Permutation::from_cycles(5, {{0, 1, 2}, {3, 4}}).order(), 6U);
  EXPECT_EQ(Permutation::from_cycles(4, {{0, 1, 2, 3}}).order(), 4U);
}

TEST(PermutationTest, OrderIsConsistentWithIteration) {
  MINEQ_SEEDED_RNG(rng, 9);
  const Permutation p = Permutation::random(10, rng);
  const std::uint64_t order = p.order();
  Permutation power(10);
  for (std::uint64_t i = 0; i < order; ++i) {
    power = p.compose(power);
    if (i + 1 < order) {
      EXPECT_FALSE(power.is_identity()) << "order not minimal";
    }
  }
  EXPECT_TRUE(power.is_identity());
}

TEST(PermutationTest, Parity) {
  EXPECT_TRUE(Permutation(4).is_even());
  EXPECT_FALSE(Permutation::from_cycles(4, {{0, 1}}).is_even());
  EXPECT_TRUE(Permutation::from_cycles(4, {{0, 1}, {2, 3}}).is_even());
  EXPECT_TRUE(Permutation::from_cycles(4, {{0, 1, 2}}).is_even());
}

TEST(PermutationTest, FixedPoints) {
  EXPECT_EQ(Permutation(4).fixed_points(), 4U);
  EXPECT_EQ(Permutation::from_cycles(4, {{0, 1}}).fixed_points(), 2U);
}

TEST(PermutationTest, RandomIsUniformish) {
  // Not a statistical test: just check we see several distinct
  // permutations across draws.
  MINEQ_SEEDED_RNG(rng, 11);
  const Permutation first = Permutation::random(6, rng);
  int distinct = 0;
  for (int i = 0; i < 10; ++i) {
    if (!(Permutation::random(6, rng) == first)) ++distinct;
  }
  EXPECT_GE(distinct, 8);
}

TEST(PermutationTest, StrCycleNotation) {
  const Permutation p = Permutation::from_cycles(4, {{0, 1, 2}});
  EXPECT_EQ(p.str(), "(0 1 2)(3)");
}

}  // namespace
}  // namespace mineq::perm
