/// \file megafabric_test.cpp
/// \brief The sharded single-simulation engine: SimConfig::sim_threads
/// must be byte-identical to the serial run at every thread count, for
/// both switching disciplines and every policy instantiation (pristine,
/// faulted, credit flow control, multipath). Every comparison below is
/// exact — integer counters with EXPECT_EQ and statistics with exact
/// double equality — because the sharded driver's determinism contract
/// is bit-for-bit reproduction of the serial iteration order, not
/// "statistically equivalent".

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "fault/fault_model.hpp"
#include "min/kary.hpp"
#include "min/networks.hpp"
#include "multipath/multipath_wiring.hpp"
#include "sim/engine.hpp"
#include "sim/wormhole.hpp"

namespace mineq::sim {
namespace {

using fault::FaultKind;
using fault::FaultMask;
using fault::FaultSpec;
using min::MultiPathWiring;
using min::NetworkKind;

// The thread counts every pin runs at (beyond serial). 5 exercises
// uneven ranges (cells % threads != 0) and 8 the ISSUE's target core
// count; both exceed this CI box's single core on purpose — correctness
// must not depend on the host's parallelism.
constexpr std::size_t kThreadCounts[] = {2, 5, 8};

void expect_stats_identical(const RunningStats& a, const RunningStats& b) {
  ASSERT_EQ(a.count(), b.count());
  if (a.count() == 0) return;
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_histogram_identical(const Histogram& a, const Histogram& b) {
  ASSERT_EQ(a.total(), b.total());
  EXPECT_EQ(a.overflow(), b.overflow());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "quantile " << q;
  }
}

/// Every field of the result, exactly. Doubles compare with ==: the
/// sharded run must reproduce the serial arithmetic, including the
/// order of every Welford update.
void expect_identical(const SimResult& serial, const SimResult& sharded) {
  EXPECT_EQ(serial.offered, sharded.offered);
  EXPECT_EQ(serial.injected, sharded.injected);
  EXPECT_EQ(serial.delivered, sharded.delivered);
  EXPECT_EQ(serial.flits_injected, sharded.flits_injected);
  EXPECT_EQ(serial.flits_delivered, sharded.flits_delivered);
  EXPECT_EQ(serial.flits_in_flight, sharded.flits_in_flight);
  EXPECT_EQ(serial.hol_blocking_cycles, sharded.hol_blocking_cycles);
  EXPECT_EQ(serial.credit_stall_cycles, sharded.credit_stall_cycles);
  EXPECT_EQ(serial.credit_violations, sharded.credit_violations);
  EXPECT_EQ(serial.packets_dropped_faulted, sharded.packets_dropped_faulted);
  EXPECT_EQ(serial.packets_rerouted, sharded.packets_rerouted);
  EXPECT_EQ(serial.packets_misdelivered, sharded.packets_misdelivered);
  EXPECT_EQ(serial.flits_dropped_faulted, sharded.flits_dropped_faulted);
  EXPECT_EQ(serial.paths_available, sharded.paths_available);
  EXPECT_EQ(serial.path_reroutes, sharded.path_reroutes);
  EXPECT_EQ(serial.throughput, sharded.throughput);
  EXPECT_EQ(serial.acceptance, sharded.acceptance);
  EXPECT_EQ(serial.link_utilization, sharded.link_utilization);
  expect_stats_identical(serial.latency, sharded.latency);
  expect_stats_identical(serial.lane_occupancy, sharded.lane_occupancy);
  expect_histogram_identical(serial.latency_histogram,
                             sharded.latency_histogram);
  ASSERT_EQ(serial.vl_occupancy.size(), sharded.vl_occupancy.size());
  for (std::size_t i = 0; i < serial.vl_occupancy.size(); ++i) {
    expect_stats_identical(serial.vl_occupancy[i], sharded.vl_occupancy[i]);
  }
  ASSERT_EQ(serial.sl_latency.size(), sharded.sl_latency.size());
  for (std::size_t i = 0; i < serial.sl_latency.size(); ++i) {
    expect_stats_identical(serial.sl_latency[i], sharded.sl_latency[i]);
  }
}

/// Run \p config serially, then at each entry of kThreadCounts, and
/// require byte-identical results throughout.
void expect_sharded_identical(const Engine& engine, Pattern pattern,
                              SimConfig config,
                              const FaultMask* mask = nullptr) {
  config.sim_threads = 1;
  const SimResult serial = engine.run(pattern, config, mask);
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(testing::Message() << "sim_threads = " << threads);
    config.sim_threads = threads;
    expect_identical(serial, engine.run(pattern, config, mask));
  }
}

[[nodiscard]] SimConfig base_config(SwitchingMode mode) {
  SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.6;
  config.warmup_cycles = 50;
  config.measure_cycles = 250;
  config.seed = 1234;
  return config;
}

// ------------------------------------------------------- store-and-forward

TEST(MegafabricSafTest, PlainUniformMatchesSerial) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.packet_length = 3;
  config.queue_capacity = 4;
  expect_sharded_identical(engine, Pattern::kUniform, config);
}

TEST(MegafabricSafTest, AdversarialPermutationCrossRangeStress) {
  // Bit reversal on an Omega funnels conflicting streams through shared
  // mid-stage switches, with capacity 1 so nearly every cycle carries a
  // cross-range handoff under backpressure. This is the pin that would
  // catch a racy or mis-partitioned push into a neighbour's range.
  const Engine engine(min::build_network(NetworkKind::kOmega, 6));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.injection_rate = 1.0;
  config.queue_capacity = 1;
  expect_sharded_identical(engine, Pattern::kBitReversal, config);
  expect_sharded_identical(engine, Pattern::kTranspose, config);
}

TEST(MegafabricSafTest, BurstyMultiFlitMatchesSerial) {
  const Engine engine(min::build_network(NetworkKind::kBaseline, 6));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.packet_length = 5;
  config.queue_capacity = 2;
  expect_sharded_identical(engine, Pattern::kBursty, config);
}

TEST(MegafabricSafTest, FaultedMatchesSerial) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 6));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.queue_capacity = 4;
  // Switch kills produce dead-switch drains; random links produce
  // detours and misdeliveries — both drop paths cross worker ranges.
  for (const FaultKind kind : {FaultKind::kSwitchKills,
                               FaultKind::kRandomLinks}) {
    SCOPED_TRACE(fault::fault_kind_name(kind));
    const FaultMask mask = fault::build_fault_mask(
        engine.wiring(), FaultSpec{kind, 0.08, 7});
    expect_sharded_identical(engine, Pattern::kUniform, config, &mask);
  }
}

TEST(MegafabricSafTest, CreditsWeightedMatchesSerial) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.queue_capacity = 4;
  config.credits.enabled = true;
  config.credits.return_latency = 4;
  config.credits.sl_map = {0, 1};
  config.credits.weights = {3, 1};
  config.credits.arbitration = ArbitrationPolicy::kWeighted;
  expect_sharded_identical(engine, Pattern::kUniform, config);
}

TEST(MegafabricSafTest, MultipathMatchesSerial) {
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.queue_capacity = 2;
  for (const PathPolicy policy : {PathPolicy::kHash, PathPolicy::kAdaptive}) {
    SCOPED_TRACE(static_cast<int>(policy));
    config.path_policy = policy;
    const Engine benes{MultiPathWiring::benes(4, 2)};
    expect_sharded_identical(benes, Pattern::kUniform, config);
    const Engine dilated{
        MultiPathWiring::dilated(NetworkKind::kOmega, 4, 2, 2)};
    expect_sharded_identical(dilated, Pattern::kBitReversal, config);
  }
}

TEST(MegafabricSafTest, MultipathFaultedMatchesSerial) {
  const Engine engine{MultiPathWiring::replicated(NetworkKind::kOmega, 4, 2,
                                                  2)};
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.queue_capacity = 2;
  config.path_policy = PathPolicy::kHash;
  const FaultMask mask = fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.1, 11});
  expect_sharded_identical(engine, Pattern::kUniform, config, &mask);
}

// ---------------------------------------------------------------- wormhole

TEST(MegafabricWormholeTest, PlainUniformMatchesSerial) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.packet_length = 4;
  config.lanes = 2;
  config.lane_depth = 4;
  expect_sharded_identical(engine, Pattern::kUniform, config);
}

TEST(MegafabricWormholeTest, AdversarialPermutationCrossRangeStress) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 6));
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.injection_rate = 1.0;
  config.packet_length = 3;
  config.lanes = 1;
  config.lane_depth = 2;
  expect_sharded_identical(engine, Pattern::kBitReversal, config);
  expect_sharded_identical(engine, Pattern::kTranspose, config);
}

TEST(MegafabricWormholeTest, FaultedMatchesSerial) {
  const Engine engine(min::build_network(NetworkKind::kBaseline, 6));
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.packet_length = 4;
  config.lanes = 2;
  config.lane_depth = 2;
  for (const FaultKind kind : {FaultKind::kSwitchKills,
                               FaultKind::kRandomLinks}) {
    SCOPED_TRACE(fault::fault_kind_name(kind));
    const FaultMask mask = fault::build_fault_mask(
        engine.wiring(), FaultSpec{kind, 0.08, 7});
    expect_sharded_identical(engine, Pattern::kUniform, config, &mask);
  }
}

TEST(MegafabricWormholeTest, CreditsMatchesSerial) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.packet_length = 4;
  config.lanes = 2;
  config.lane_depth = 4;
  config.credits.enabled = true;
  config.credits.return_latency = 3;
  config.credits.sl_map = {0, 1};
  config.credits.weights = {3, 1};
  config.credits.arbitration = ArbitrationPolicy::kWeighted;
  expect_sharded_identical(engine, Pattern::kUniform, config);
}

TEST(MegafabricWormholeTest, EjectObserverSeesSerialOrder) {
  // The observer is the strictest order-sensitive sink: it must see
  // every ejected flit — warmup included — in the exact serial ejection
  // order, which the sharded driver reproduces by replaying the workers'
  // event buffers in ascending-worker order.
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  const WormholeSimulator simulator(engine);
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.packet_length = 3;
  config.lanes = 2;
  config.lane_depth = 2;
  const auto trace = [&](std::size_t threads) {
    std::vector<std::uint64_t> events;
    config.sim_threads = threads;
    const EjectObserver observer = [&events](const Flit& flit,
                                             std::uint64_t cycle) {
      events.push_back((cycle << 34) | (std::uint64_t{flit.packet_id} << 2) |
                       (flit.is_head() ? 2U : 0U) |
                       (flit.is_tail() ? 1U : 0U));
    };
    simulator.run(Pattern::kUniform, config, observer);
    return events;
  };
  const std::vector<std::uint64_t> serial = trace(1);
  EXPECT_FALSE(serial.empty());
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(testing::Message() << "sim_threads = " << threads);
    EXPECT_EQ(serial, trace(threads));
  }
}

TEST(MegafabricWormholeTest, MultipathMatchesSerial) {
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.packet_length = 3;
  config.lanes = 2;
  config.lane_depth = 2;
  for (const PathPolicy policy : {PathPolicy::kHash, PathPolicy::kAdaptive}) {
    SCOPED_TRACE(static_cast<int>(policy));
    config.path_policy = policy;
    const Engine benes{MultiPathWiring::benes(4, 2)};
    expect_sharded_identical(benes, Pattern::kUniform, config);
  }
}

// ------------------------------------------------------------ conservation

TEST(MegafabricTest, FlitLedgerClosesExactlyUnderSharding) {
  // With warmup 0 the flit ledger must close exactly — injected ==
  // delivered + in flight (+ dropped when faulted) — at every thread
  // count, for both disciplines.
  const Engine engine(min::build_network(NetworkKind::kOmega, 6));
  const FaultMask mask = fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kSwitchKills, 0.1, 3});
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    SimConfig config = base_config(mode);
    config.packet_length = 3;
    config.queue_capacity = 2;
    config.lanes = 2;
    config.lane_depth = 2;
    config.warmup_cycles = 0;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      SCOPED_TRACE(testing::Message()
                   << "mode " << static_cast<int>(mode) << " threads "
                   << threads);
      config.sim_threads = threads;
      const SimResult pristine = engine.run(Pattern::kUniform, config);
      EXPECT_EQ(pristine.flits_injected,
                pristine.flits_delivered + pristine.flits_in_flight);
      const SimResult faulted = engine.run(Pattern::kUniform, config, &mask);
      EXPECT_EQ(faulted.flits_injected,
                faulted.flits_delivered + faulted.flits_in_flight +
                    faulted.flits_dropped_faulted);
    }
  }
}

// ------------------------------------------------------------- megafabric

TEST(MegafabricTest, MillionTerminalFabricSmoke) {
  // The namesake scale pin: a radix-16, 5-stage Omega is 16^5 = 2^20
  // terminals (65536 switches per stage). A handful of cycles at low
  // rate with single-slot buffers keeps the runtime and footprint small
  // while still forcing full-fabric kernel sweeps; serial vs 2-thread
  // results must match exactly.
  const Engine engine(
      min::build_kary_network(NetworkKind::kOmega, 5, 16));
  ASSERT_EQ(engine.terminals(), 1ULL << 20);
  SimConfig config;
  config.mode = SwitchingMode::kStoreAndForward;
  config.injection_rate = 0.05;
  config.queue_capacity = 1;
  config.warmup_cycles = 0;
  config.measure_cycles = 8;
  config.seed = 5;
  const SimResult serial = engine.run(Pattern::kUniform, config);
  EXPECT_EQ(serial.flits_injected,
            serial.flits_delivered + serial.flits_in_flight);
  config.sim_threads = 2;
  expect_identical(serial, engine.run(Pattern::kUniform, config));
}

// ------------------------------------------------------------- validation

TEST(MegafabricTest, ValidateRejectsBadThreadCounts) {
  SimConfig config;
  config.sim_threads = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_threads = SimConfig::kMaxSimThreads + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_threads = SimConfig::kMaxSimThreads;
  EXPECT_NO_THROW(config.validate());
}

TEST(MegafabricTest, ThreadCountAboveCellCountClamps) {
  // 3-stage Omega: 4 cells per stage; 64 requested shards clamp to the
  // cell count instead of spinning empty workers — and stay identical.
  const Engine engine(min::build_network(NetworkKind::kOmega, 3));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.queue_capacity = 2;
  const SimResult serial = engine.run(Pattern::kUniform, config);
  config.sim_threads = 64;
  expect_identical(serial, engine.run(Pattern::kUniform, config));
}

}  // namespace
}  // namespace mineq::sim
