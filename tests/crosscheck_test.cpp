/// \file crosscheck_test.cpp
/// \brief The paper's "easy characterization" validated against the
/// expensive general-purpose oracle (VF2-style isomorphism search) on
/// randomized positive and negative instances.

#include <gtest/gtest.h>

#include "graph/isomorphism.hpp"
#include "min/baseline.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

class CrosscheckTest : public ::testing::TestWithParam<int> {};

TEST_P(CrosscheckTest, DecisionAgreesWithOracleOnRandomNetworks) {
  const int n = GetParam();
  MINEQ_SEEDED_RNG(rng, 5000 + static_cast<std::uint64_t>(n));
  const MIDigraph base = baseline_network(n);
  int positives = 0;
  int negatives = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const MIDigraph g = random_independent_network(n, rng);
    const bool fast = is_baseline_equivalent(g);
    graph::SearchStats stats;
    const auto mapping = graph::find_layered_isomorphism(
        g.to_layered(), base.to_layered(), &stats, /*budget=*/5'000'000);
    ASSERT_FALSE(stats.budget_exhausted)
        << "oracle ran out of budget at n=" << n;
    EXPECT_EQ(fast, mapping.has_value()) << "n=" << n << " trial=" << trial;
    if (fast) {
      ++positives;
      EXPECT_TRUE(graph::verify_layered_isomorphism(
          g.to_layered(), base.to_layered(), *mapping));
    } else {
      ++negatives;
    }
  }
  // Sanity: random independent networks at these sizes produce a mix.
  EXPECT_GT(positives + negatives, 0);
}

INSTANTIATE_TEST_SUITE_P(Stages, CrosscheckTest, ::testing::Values(2, 3, 4));

TEST(CrosscheckScrambledTest, ScrambledClassicsAgreeWithOracle) {
  MINEQ_SEEDED_RNG(rng, 5100);
  const int n = 4;
  const MIDigraph base = baseline_network(n);
  for (NetworkKind kind : all_network_kinds()) {
    const MIDigraph g = test::scrambled_copy(build_network(kind, n), rng);
    EXPECT_TRUE(is_baseline_equivalent(g)) << network_name(kind);
    const auto mapping =
        graph::find_layered_isomorphism(g.to_layered(), base.to_layered());
    EXPECT_TRUE(mapping.has_value()) << network_name(kind);
  }
}

TEST(CrosscheckNegativeTest, PerturbedBaselineDetectedByBoth) {
  // Swap two arcs of one stage so degrees stay valid but the topology
  // breaks: both deciders must reject (or both accept if the perturbation
  // happens to preserve equivalence — the deciders just have to agree).
  MINEQ_SEEDED_RNG(rng, 5200);
  const int n = 4;
  const MIDigraph base = baseline_network(n);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Connection> connections = base.connections();
    const std::size_t stage = rng.below(connections.size());
    std::vector<std::uint32_t> f = connections[stage].f_table();
    std::vector<std::uint32_t> g = connections[stage].g_table();
    const std::uint32_t a = static_cast<std::uint32_t>(rng.below(f.size()));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.below(f.size()));
    std::swap(f[a], f[b]);
    connections[stage] = Connection(std::move(f), std::move(g), n - 1);
    const MIDigraph perturbed(n, std::move(connections));
    ASSERT_TRUE(perturbed.is_valid());
    const bool fast = is_baseline_equivalent(perturbed);
    const auto mapping = graph::find_layered_isomorphism(
        perturbed.to_layered(), base.to_layered());
    EXPECT_EQ(fast, mapping.has_value()) << "trial=" << trial;
  }
}

TEST(CrosscheckAutomorphismTest, BaselineAutomorphismCountClosedForm) {
  // Measured by exhaustive search and pinned: |Aut(Baseline_n)| =
  // 2^(2^n - 2) for n = 1..4 (1, 4, 64, 16384). Each K_{2,2} block
  // contributes independent swap freedom, reduced by the recursive
  // consistency constraints.
  for (int n = 1; n <= 4; ++n) {
    const std::uint64_t expected =
        std::uint64_t{1} << ((std::uint64_t{1} << n) - 2);
    EXPECT_EQ(graph::count_layered_automorphisms(
                  baseline_network(n).to_layered()),
              expected)
        << "n=" << n;
  }
}

TEST(CrosscheckAutomorphismTest, IsomorphicNetworksShareAutCount) {
  // Automorphism count is an isomorphism invariant: Omega matches
  // Baseline at every size checked.
  for (int n = 2; n <= 4; ++n) {
    EXPECT_EQ(graph::count_layered_automorphisms(
                  build_network(NetworkKind::kOmega, n).to_layered()),
              graph::count_layered_automorphisms(
                  baseline_network(n).to_layered()))
        << "n=" << n;
  }
}

TEST(CrosscheckAutomorphismTest, NonEquivalentNetworkDiffersInAutCount) {
  // The all-identity (double-link chain) network has a much larger
  // automorphism group than Baseline: each chain is interchangeable.
  std::vector<Connection> conns(
      2, Connection::from_functions(
             2, [](std::uint32_t x) { return x; },
             [](std::uint32_t x) { return x; }));
  const MIDigraph chains(3, std::move(conns));
  // 4 disjoint double-link chains: 4! orderings = 24 automorphisms.
  EXPECT_EQ(graph::count_layered_automorphisms(chains.to_layered()), 24U);
}

}  // namespace
}  // namespace mineq::min
