#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mineq::util {
namespace {

TEST(RngTest, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  SplitMix64 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowCoversRange) {
  SplitMix64 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(RngTest, ChanceExtremes) {
  SplitMix64 rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(RngTest, SplitIndependentAndDeterministic) {
  const SplitMix64 root(5);
  SplitMix64 s0 = root.split(0);
  SplitMix64 s0_again = root.split(0);
  SplitMix64 s1 = root.split(1);
  std::vector<std::uint64_t> a, b, c;
  for (int i = 0; i < 32; ++i) {
    a.push_back(s0.next());
    b.push_back(s0_again.next());
    c.push_back(s1.next());
  }
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RngTest, UsableWithStdShuffleInterface) {
  EXPECT_EQ(SplitMix64::min(), 0U);
  EXPECT_EQ(SplitMix64::max(), ~std::uint64_t{0});
  SplitMix64 rng(3);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace mineq::util
