/// \file sweep_test.cpp
/// \brief The experiment-sweep subsystem: grid enumeration, validation,
/// thread-count invariance of the rendered CSV/JSON, and emitter shape.

#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>

#include "exp/report.hpp"

namespace mineq::exp {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.networks = {min::NetworkKind::kOmega, min::NetworkKind::kBaseline};
  grid.patterns = {sim::Pattern::kUniform, sim::Pattern::kComplement};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.lane_counts = {1, 2};
  grid.rates = {0.2, 1.0};
  grid.stages = 4;
  grid.base.packet_length = 3;
  grid.base.warmup_cycles = 50;
  grid.base.measure_cycles = 300;
  grid.base.seed = 7;
  return grid;
}

TEST(SweepTest, GridSizeIsAxisProduct) {
  const SweepGrid grid = small_grid();
  // saf contributes one lane variant, wormhole the full lane axis:
  // 2 networks * 2 patterns * (1 + 2) mode-lane variants * 2 rates.
  EXPECT_EQ(grid.size(), 2U * 2U * 3U * 2U);
  const SweepResult sweep = run_sweep(grid, 2);
  EXPECT_EQ(sweep.points.size(), grid.size());
}

TEST(SweepTest, StoreAndForwardCollapsesLaneAxis) {
  const SweepResult sweep = run_sweep(small_grid(), 2);
  std::size_t saf_points = 0;
  for (const SweepPoint& point : sweep.points) {
    if (point.mode == sim::SwitchingMode::kStoreAndForward) {
      ++saf_points;
      EXPECT_EQ(point.lanes, 1U);  // recorded with the first lane count
    }
  }
  // One saf point per (network, pattern, rate) — the lane axis is gone.
  EXPECT_EQ(saf_points, 2U * 2U * 2U);
}

TEST(SweepTest, EnumerationOrderIsRateInnermost) {
  const SweepGrid grid = small_grid();
  const SweepResult sweep = run_sweep(grid, 2);
  // First two points: same everything except the rate axis.
  EXPECT_EQ(sweep.points[0].network, min::NetworkKind::kOmega);
  EXPECT_DOUBLE_EQ(sweep.points[0].rate, 0.2);
  EXPECT_DOUBLE_EQ(sweep.points[1].rate, 1.0);
  EXPECT_EQ(sweep.points[0].lanes, sweep.points[1].lanes);
  // Network-major: the second half of the grid is Baseline.
  EXPECT_EQ(sweep.points[grid.size() / 2].network,
            min::NetworkKind::kBaseline);
}

TEST(SweepTest, ByteIdenticalAcrossThreadCounts) {
  // All thread counts share one Engine (and one min::FlatWiring) per
  // network; the rendered text must not depend on how the grid points
  // were scheduled over it.
  const SweepGrid grid = small_grid();
  const SweepResult serial = run_sweep(grid, 1);
  const SweepResult two = run_sweep(grid, 2);
  const SweepResult parallel = run_sweep(grid, 5);
  EXPECT_EQ(sweep_csv(serial), sweep_csv(two));
  EXPECT_EQ(sweep_csv(serial), sweep_csv(parallel));
  EXPECT_EQ(sweep_json(serial), sweep_json(two));
  EXPECT_EQ(sweep_json(serial), sweep_json(parallel));
}

TEST(SweepTest, BurstyPatternSweepsAndInjectsLessThanUniform) {
  SweepGrid grid = small_grid();
  grid.patterns = {sim::Pattern::kUniform, sim::Pattern::kBursty};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.rates = {0.8};
  const SweepResult sweep = run_sweep(grid, 2);
  std::uint64_t uniform_offered = 0;
  std::uint64_t bursty_offered = 0;
  for (const SweepPoint& point : sweep.points) {
    if (point.pattern == sim::Pattern::kUniform) {
      uniform_offered += point.result.offered;
    } else {
      bursty_offered += point.result.offered;
      EXPECT_GT(point.result.delivered, 0U);
    }
  }
  // OFF terminals make no injection attempts: at duty 1/4 the bursty
  // offered load must sit well below the always-on uniform load.
  EXPECT_LT(bursty_offered, uniform_offered / 2);
  // And byte-determinism holds for the modulated pattern too.
  EXPECT_EQ(sweep_csv(run_sweep(grid, 1)), sweep_csv(run_sweep(grid, 4)));
}

TEST(SweepTest, FaultAxisSweepsAndReportsSurvivorColumns) {
  SweepGrid grid = small_grid();
  grid.faults = {fault::FaultSpec{},
                 fault::FaultSpec{fault::FaultKind::kRandomLinks, 0.1, 5},
                 fault::FaultSpec{fault::FaultKind::kSwitchKills, 0.1, 5}};
  EXPECT_EQ(grid.size(), 2U * 2U * 3U * 3U * 2U);
  const SweepResult sweep = run_sweep(grid, 2);
  ASSERT_EQ(sweep.points.size(), grid.size());
  for (const SweepPoint& point : sweep.points) {
    if (point.fault.kind == fault::FaultKind::kNone) {
      // Pristine points: intact, baseline-equivalent survivor, and the
      // fault counters stay untouched.
      EXPECT_TRUE(point.survivor.full_access);
      EXPECT_TRUE(point.survivor.baseline_equivalent);
      EXPECT_EQ(point.survivor.surviving_arcs, point.survivor.total_arcs);
      EXPECT_EQ(point.result.packets_dropped_faulted, 0U);
      EXPECT_EQ(point.result.packets_rerouted, 0U);
    } else {
      // Any removed arc severs some pair in a banyan fabric.
      EXPECT_LT(point.survivor.surviving_arcs, point.survivor.total_arcs);
      EXPECT_FALSE(point.survivor.full_access);
      EXPECT_FALSE(point.survivor.baseline_equivalent);
    }
  }
  // The resilience columns reach the rendered artifacts.
  const std::string csv = sweep_csv(sweep);
  for (const char* column :
       {",fault_kind,", ",fault_rate,", ",fault_seed,",
        ",delivered_fraction,", ",packets_dropped_faulted,",
        ",packets_misdelivered,", ",full_access,", ",surviving_arcs"}) {
    EXPECT_NE(csv.find(column), std::string::npos) << column;
  }
  // And fault sweeps stay byte-identical across thread counts.
  EXPECT_EQ(sweep_csv(run_sweep(grid, 1)), csv);
  EXPECT_EQ(sweep_csv(run_sweep(grid, 5)), csv);
}

TEST(SweepTest, BurstAxisExpandsOnlyBurstyPatterns) {
  SweepGrid grid = small_grid();
  grid.patterns = {sim::Pattern::kUniform, sim::Pattern::kBursty};
  grid.modes = {sim::SwitchingMode::kStoreAndForward};
  grid.rates = {0.8};
  grid.bursts = {sim::BurstParams{},               // duty 1/4
                 sim::BurstParams{1.0 / 24, 1.0 / 8}};  // duty 3/4
  // uniform contributes one burst variant, bursty both.
  EXPECT_EQ(grid.size(), 2U * (1U + 2U) * 1U * 1U);
  const SweepResult sweep = run_sweep(grid, 2);
  std::vector<std::uint64_t> bursty_offered;
  for (const SweepPoint& point : sweep.points) {
    if (point.pattern == sim::Pattern::kBursty) {
      bursty_offered.push_back(point.result.offered);
    }
  }
  ASSERT_EQ(bursty_offered.size(), 2U * 2U);  // 2 networks x 2 variants
  // The high-duty variant offers far more load than the default.
  EXPECT_GT(bursty_offered[1], 2 * bursty_offered[0]);
}

TEST(SweepTest, RadixAxisExpandsTheGridAndStaysDeterministic) {
  SweepGrid grid = small_grid();
  grid.networks = {min::NetworkKind::kOmega, min::NetworkKind::kBaseline};
  grid.radices = {2, 3};
  grid.patterns = {sim::Pattern::kUniform};
  // 2 networks * 2 radices * 1 pattern * (1 + 2) mode-lane variants *
  // 2 rates.
  EXPECT_EQ(grid.size(), 2U * 2U * 1U * 3U * 2U);
  const SweepResult sweep = run_sweep(grid, 2);
  ASSERT_EQ(sweep.points.size(), grid.size());
  std::size_t kary_points = 0;
  for (const SweepPoint& point : sweep.points) {
    if (point.radix == 3) {
      ++kary_points;
      EXPECT_GT(point.result.delivered, 0U);
    }
    EXPECT_LE(point.result.delivered, point.result.injected);
  }
  EXPECT_EQ(kary_points, grid.size() / 2);
  // Radix is enumerated right after network: the first half of each
  // network block is radix 2, the second radix 3.
  EXPECT_EQ(sweep.points[0].radix, 2);
  EXPECT_EQ(sweep.points[grid.size() / 4].radix, 3);
  // The radix column reaches the artifacts, and determinism holds at
  // 1/2/5 threads with the radix axis in play.
  const std::string csv = sweep_csv(sweep);
  EXPECT_NE(csv.find(",radix,"), std::string::npos);
  EXPECT_EQ(sweep_csv(run_sweep(grid, 1)), csv);
  EXPECT_EQ(sweep_csv(run_sweep(grid, 5)), csv);
  EXPECT_EQ(sweep_json(run_sweep(grid, 1)), sweep_json(run_sweep(grid, 5)));
}

TEST(SweepTest, RadixAxisCrossesTheFaultAxis) {
  SweepGrid grid = small_grid();
  grid.networks = {min::NetworkKind::kOmega};
  grid.radices = {3};
  grid.patterns = {sim::Pattern::kUniform};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.rates = {0.5};
  grid.base.warmup_cycles = 0;  // exact conservation ledger
  grid.faults = {fault::FaultSpec{},
                 fault::FaultSpec{fault::FaultKind::kPartialPort, 0.3, 5},
                 fault::FaultSpec{fault::FaultKind::kSwitchKills, 0.1, 5}};
  const SweepResult sweep = run_sweep(grid, 2);
  ASSERT_EQ(sweep.points.size(), grid.size());
  for (const SweepPoint& point : sweep.points) {
    EXPECT_EQ(point.radix, 3);
    // The flit ledger closes exactly at every fault kind and radix.
    EXPECT_EQ(point.result.flits_injected,
              point.result.flits_delivered + point.result.flits_in_flight +
                  point.result.flits_dropped_faulted);
    if (point.fault.kind == fault::FaultKind::kPartialPort) {
      // Partial-port switches keep routing: reroutes, no drops, and the
      // survivor keeps full access only if no pair was severed — but
      // never a dead switch.
      EXPECT_EQ(point.result.packets_dropped_faulted, 0U);
      EXPECT_GT(point.result.packets_rerouted, 0U);
      EXPECT_LT(point.survivor.surviving_arcs, point.survivor.total_arcs);
    }
  }
}

TEST(SweepTest, RadixAxisRejectsKindsWithoutKaryConstruction) {
  SweepGrid grid = small_grid();
  grid.networks = {min::NetworkKind::kIndirectBinaryCube};
  grid.radices = {3};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.radices = {1};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.radices.clear();
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);
}

TEST(SweepTest, CreditAxisExpandsTheGridAndStaysDeterministic) {
  SweepGrid grid = small_grid();
  grid.patterns = {sim::Pattern::kUniform};
  sim::CreditConfig latency0;
  latency0.enabled = true;
  sim::CreditConfig latency2 = latency0;
  latency2.return_latency = 2;
  sim::CreditConfig weighted = latency0;
  weighted.arbitration = sim::ArbitrationPolicy::kWeighted;
  weighted.weights = {4, 1};
  weighted.sl_map = {0, 0};  // both SLs valid for saf (1 lane) too
  grid.credits = {sim::CreditConfig{}, latency0, latency2, weighted};
  // 2 networks * 1 pattern * (1 + 2) mode-lane variants * 4 credit
  // configs * 2 rates.
  EXPECT_EQ(grid.size(), 2U * 1U * 3U * 4U * 2U);
  const SweepResult sweep = run_sweep(grid, 2);
  ASSERT_EQ(sweep.points.size(), grid.size());
  for (const SweepPoint& point : sweep.points) {
    // The invariant audit runs on every credit-enabled point.
    EXPECT_EQ(point.result.credit_violations, 0U);
    if (!point.credits.enabled) {
      EXPECT_EQ(point.result.credit_stall_cycles, 0U);
    }
  }
  // The credit axis sits between lanes and faults in the enumeration:
  // points 0..7 of the first (saf) block differ only in (credits, rate).
  EXPECT_FALSE(sweep.points[0].credits.enabled);
  EXPECT_TRUE(sweep.points[2].credits.enabled);
  EXPECT_EQ(sweep.points[4].credits.return_latency, 2U);
  EXPECT_EQ(sweep.points[6].credits.arbitration,
            sim::ArbitrationPolicy::kWeighted);
  // The credit columns reach the artifacts, and the 1/2/5-thread byte
  // determinism pin holds with the credit axis in play.
  const std::string csv = sweep_csv(sweep);
  for (const char* column :
       {",credits,", ",credit_latency,", ",arbitration,", ",vl_weights,",
        ",sl_map,", ",vl_occupancy,", ",sl_latency_mean,",
        ",credit_stall_cycles,", ",credit_violations,"}) {
    EXPECT_NE(csv.find(column), std::string::npos) << column;
  }
  EXPECT_EQ(sweep_csv(run_sweep(grid, 1)), csv);
  EXPECT_EQ(sweep_csv(run_sweep(grid, 5)), csv);
  EXPECT_EQ(sweep_json(run_sweep(grid, 1)), sweep_json(run_sweep(grid, 5)));
}

/// A sweep over a neutral credit config (latency 0, rr, uniform weights)
/// must reproduce the credit-disabled sweep's numbers point for point:
/// both grids are single-value on the credit axis, so task indices — and
/// with them the per-point seeds — line up exactly, and only the credit
/// columns may differ.
TEST(SweepTest, NeutralCreditSweepMatchesDisabledSweepNumerically) {
  SweepGrid disabled_grid = small_grid();
  disabled_grid.patterns = {sim::Pattern::kUniform};
  SweepGrid neutral_grid = disabled_grid;
  sim::CreditConfig neutral;
  neutral.enabled = true;
  neutral_grid.credits = {neutral};
  const SweepResult disabled = run_sweep(disabled_grid, 2);
  const SweepResult with_credits = run_sweep(neutral_grid, 2);
  ASSERT_EQ(disabled.points.size(), with_credits.points.size());
  for (std::size_t i = 0; i < disabled.points.size(); ++i) {
    const sim::SimResult& a = disabled.points[i].result;
    const sim::SimResult& b = with_credits.points[i].result;
    ASSERT_EQ(disabled.points[i].seed, with_credits.points[i].seed);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.flits_injected, b.flits_injected);
    EXPECT_EQ(a.hol_blocking_cycles, b.hol_blocking_cycles);
    EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
    EXPECT_DOUBLE_EQ(a.link_utilization, b.link_utilization);
    EXPECT_EQ(b.credit_violations, 0U);
  }
}

/// Ratio fields are defined as 0 when nothing is injected: a rate-0 axis
/// value must never leak nan/inf into the artifacts.
TEST(SweepTest, RateZeroPointsEmitCleanZeros) {
  SweepGrid grid = small_grid();
  grid.rates = {0.0};
  const SweepResult sweep = run_sweep(grid, 2);
  for (const SweepPoint& point : sweep.points) {
    EXPECT_EQ(point.result.offered, 0U);
    EXPECT_EQ(point.result.injected, 0U);
    EXPECT_DOUBLE_EQ(point.result.acceptance, 0.0);
    EXPECT_DOUBLE_EQ(point.result.delivered_fraction(), 0.0);
    EXPECT_DOUBLE_EQ(point.result.throughput, 0.0);
  }
  const std::string csv = sweep_csv(sweep);
  const std::string json = sweep_json(sweep);
  for (const char* poison : {"nan", "inf", "NaN", "Inf"}) {
    EXPECT_EQ(csv.find(poison), std::string::npos) << poison;
    EXPECT_EQ(json.find(poison), std::string::npos) << poison;
  }
}

TEST(SweepTest, PerPointSeedsAreDistinctAndRecorded) {
  const SweepResult sweep = run_sweep(small_grid(), 2);
  std::set<std::uint64_t> seeds;
  for (const SweepPoint& point : sweep.points) {
    seeds.insert(point.seed);
  }
  EXPECT_EQ(seeds.size(), sweep.points.size());
}

TEST(SweepTest, CsvShape) {
  const SweepResult sweep = run_sweep(small_grid(), 2);
  const std::string csv = sweep_csv(sweep);
  EXPECT_EQ(csv.rfind("network,pattern,mode,lanes,rate,stages,seed,", 0), 0U);
  // Tail-behavior and conservation columns.
  for (const char* column :
       {",latency_p99,", ",flits_in_flight,", ",hol_blocking_cycles"}) {
    EXPECT_NE(csv.find(column), std::string::npos) << column;
  }
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, sweep.points.size() + 1);
  EXPECT_EQ(csv.back(), '\n');
}

TEST(SweepTest, JsonContainsTheCsvFields) {
  const SweepResult sweep = run_sweep(small_grid(), 2);
  const std::string json = sweep_json(sweep);
  for (const char* field :
       {"\"network\": ", "\"mode\": ", "\"throughput\": ",
        "\"latency_p99\": ", "\"hol_blocking_cycles\": ",
        "\"flits_in_flight\": ", "\"lane_occupancy\": "}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Seeds exceed double precision: they must be JSON strings, never
  // bare numbers a reader would round.
  EXPECT_NE(json.find("\"seed\": \""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(SweepTest, ResultsArePhysical) {
  const SweepResult sweep = run_sweep(small_grid(), 0);
  for (const SweepPoint& point : sweep.points) {
    EXPECT_LE(point.result.delivered, point.result.injected);
    EXPECT_GE(point.result.throughput, 0.0);
    EXPECT_LE(point.result.throughput, 1.0);
    EXPECT_GE(point.result.acceptance, 0.0);
    EXPECT_LE(point.result.acceptance, 1.0);
  }
}

TEST(SweepTest, ValidationErrors) {
  SweepGrid grid = small_grid();
  grid.patterns.clear();
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.rates = {1.5};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  // NaN passes both range comparisons; it must be rejected up front or
  // the validate() throw would fire inside a worker thread.
  grid = small_grid();
  grid.rates = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.lane_counts = {0};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.stages = 1;
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.stages = 5;  // transpose needs an even address width
  grid.patterns = {sim::Pattern::kTranspose};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.faults = {fault::FaultSpec{fault::FaultKind::kRandomLinks, 1.5, 0}};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.faults.clear();
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.bursts = {sim::BurstParams{0.0, 0.5}};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  grid = small_grid();
  grid.credits.clear();
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);

  // A credit config is validated against every mode/lane combination the
  // grid pairs it with: lane 5 exists at no swept wormhole lane count.
  grid = small_grid();
  sim::CreditConfig bad_map;
  bad_map.enabled = true;
  bad_map.sl_map = {5};
  grid.credits = {bad_map};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mineq::exp
