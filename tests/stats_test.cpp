#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace mineq::sim {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeDisjointMagnitudes) {
  // Non-trivial accumulators whose means differ by orders of magnitude:
  // the parallel merge must reproduce the sequential moments.
  RunningStats all;
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.125 * i;
    small.add(x);
    all.add(x);
  }
  for (int i = 0; i < 13; ++i) {
    const double x = 1e6 + 17.0 * i;
    large.add(x);
    all.add(x);
  }
  small.merge(large);
  EXPECT_EQ(small.count(), all.count());
  EXPECT_NEAR(small.mean(), all.mean(), all.mean() * 1e-12);
  EXPECT_NEAR(small.variance(), all.variance(), all.variance() * 1e-9);
  EXPECT_DOUBLE_EQ(small.min(), 0.0);
  EXPECT_DOUBLE_EQ(small.max(), 1e6 + 17.0 * 12);
}

TEST(RunningStatsTest, MergeOrderInsensitive) {
  RunningStats a;
  RunningStats b;
  for (double x : {1.0, 2.0, 3.0}) a.add(x);
  for (double x : {10.0, 20.0}) b.add(x);
  RunningStats ab = a;
  ab.merge(b);
  RunningStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12);
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(ab.min(), ba.min());
  EXPECT_DOUBLE_EQ(ab.max(), ba.max());
}

TEST(RunningStatsTest, MergeBothEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0U);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1U);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(1.0, 4);
  for (double x : {0.5, 1.5, 1.9, 3.0, 10.0}) h.add(x);
  EXPECT_EQ(h.total(), 5U);
  EXPECT_EQ(h.buckets()[0], 1U);
  EXPECT_EQ(h.buckets()[1], 2U);
  EXPECT_EQ(h.buckets()[2], 0U);
  EXPECT_EQ(h.buckets()[3], 1U);
  EXPECT_EQ(h.overflow(), 1U);
}

TEST(HistogramTest, Quantile) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(HistogramTest, OverflowMassShiftsQuantiles) {
  // Overflow counts toward total(), so quantiles that land in the
  // overflow mass report the sentinel edge just past the last bucket.
  Histogram h(1.0, 4);
  h.add(2.5);
  for (double x : {10.0, 20.0, 30.0}) h.add(x);
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.overflow(), 3U);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 3.0);  // the one in-range sample
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);   // bucket_width * (buckets + 1)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(HistogramTest, AllOverflowQuantileBeyondLastEdge) {
  Histogram h(2.0, 3);
  for (int i = 0; i < 10; ++i) h.add(100.0 + i);
  EXPECT_EQ(h.overflow(), 10U);
  EXPECT_EQ(h.total(), 10U);
  // Every quantile with positive mass reports past the covered range.
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 2.0 * 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0 * 4);
}

TEST(HistogramTest, MergeMatchesSequential) {
  Histogram all(1.0, 8);
  Histogram left(1.0, 8);
  Histogram right(1.0, 8);
  for (int i = 0; i < 60; ++i) {
    const double x = static_cast<double>((i * 7) % 12);  // some overflow
    all.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.total(), all.total());
  EXPECT_EQ(left.overflow(), all.overflow());
  EXPECT_EQ(left.buckets(), all.buckets());
  EXPECT_DOUBLE_EQ(left.quantile(0.5), all.quantile(0.5));
  EXPECT_DOUBLE_EQ(left.quantile(0.99), all.quantile(0.99));
}

TEST(HistogramTest, MergeEmptyOperands) {
  Histogram a(1.0, 4);
  Histogram empty(1.0, 4);
  a.add(0.5);
  a.add(10.0);  // overflow
  a.merge(empty);  // empty right operand: no change
  EXPECT_EQ(a.total(), 2U);
  EXPECT_EQ(a.overflow(), 1U);
  empty.merge(a);  // empty left operand: adopts the mass
  EXPECT_EQ(empty.total(), 2U);
  EXPECT_EQ(empty.overflow(), 1U);
  EXPECT_EQ(empty.buckets()[0], 1U);
  Histogram e1(1.0, 4);
  Histogram e2(1.0, 4);
  e1.merge(e2);  // both empty stays empty
  EXPECT_EQ(e1.total(), 0U);
  EXPECT_DOUBLE_EQ(e1.overflow_fraction(), 0.0);
}

TEST(HistogramTest, MergeAccumulatesOverflowMass) {
  Histogram a(2.0, 3);
  Histogram b(2.0, 3);
  for (int i = 0; i < 4; ++i) a.add(100.0);
  b.add(1.0);
  b.add(50.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 6U);
  EXPECT_EQ(a.overflow(), 5U);
  EXPECT_NEAR(a.overflow_fraction(), 5.0 / 6.0, 1e-12);
}

TEST(HistogramTest, MergeRejectsShapeMismatch) {
  Histogram a(1.0, 4);
  Histogram width(2.0, 4);
  Histogram count(1.0, 8);
  EXPECT_THROW(a.merge(width), std::invalid_argument);
  EXPECT_THROW(a.merge(count), std::invalid_argument);
}

TEST(HistogramTest, OverflowFraction) {
  Histogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.overflow_fraction(), 0.0);  // empty: defined as 0
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.overflow_fraction(), 0.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.overflow_fraction(), 0.5);
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW((void)Histogram(0.0, 4), std::invalid_argument);
  EXPECT_THROW((void)Histogram(1.0, 0), std::invalid_argument);
  Histogram h(1.0, 2);
  EXPECT_THROW((void)h.add(-1.0), std::invalid_argument);
}

TEST(HistogramTest, StrSkipsEmptyBuckets) {
  Histogram h(2.0, 3);
  h.add(1.0);
  h.add(100.0);
  const std::string s = h.str();
  EXPECT_NE(s.find("[0,2) 1"), std::string::npos);
  EXPECT_NE(s.find("overflow 1"), std::string::npos);
}

}  // namespace
}  // namespace mineq::sim
