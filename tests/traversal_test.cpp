#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mineq::graph {
namespace {

Digraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(1, 3);
  g.add_arc(2, 3);
  return g;
}

TEST(TraversalTest, BfsDistancesDirected) {
  const Digraph g = diamond();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0U);
  EXPECT_EQ(dist[1], 1U);
  EXPECT_EQ(dist[2], 1U);
  EXPECT_EQ(dist[3], 2U);
  // From node 1 the direction matters.
  const auto from1 = bfs_distances(g, 1);
  EXPECT_EQ(from1[0], kUnreachable);
  EXPECT_EQ(from1[3], 1U);
}

TEST(TraversalTest, BfsDistancesUndirected) {
  const Digraph g = diamond();
  const auto dist = bfs_distances_undirected(g, 3);
  EXPECT_EQ(dist[3], 0U);
  EXPECT_EQ(dist[1], 1U);
  EXPECT_EQ(dist[2], 1U);
  EXPECT_EQ(dist[0], 2U);
}

TEST(TraversalTest, DistanceProfile) {
  const Digraph g = diamond();
  const auto profile = distance_profile(g, 0);
  ASSERT_EQ(profile.size(), 3U);
  EXPECT_EQ(profile[0], 1U);
  EXPECT_EQ(profile[1], 2U);
  EXPECT_EQ(profile[2], 1U);
}

TEST(TraversalTest, ReachableSet) {
  Digraph g(5);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(3, 4);
  const auto reach = reachable_set(g, 0);
  EXPECT_EQ(reach, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(TraversalTest, CountPathsDiamond) {
  const Digraph g = diamond();
  const auto counts = count_paths_saturating(g, 0, 100);
  EXPECT_EQ(counts[0], 1U);
  EXPECT_EQ(counts[1], 1U);
  EXPECT_EQ(counts[2], 1U);
  EXPECT_EQ(counts[3], 2U);  // two paths through the diamond
}

TEST(TraversalTest, CountPathsSaturates) {
  // Chain of diamonds: path count doubles each diamond; cap at 4.
  Digraph g(7);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(1, 3);
  g.add_arc(2, 3);
  g.add_arc(3, 4);
  g.add_arc(3, 5);
  g.add_arc(4, 6);
  g.add_arc(5, 6);
  const auto counts = count_paths_saturating(g, 0, 3);
  EXPECT_EQ(counts[6], 3U);  // true count 4, saturated at 3
}

TEST(TraversalTest, CountPathsParallelArcs) {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(0, 1);
  const auto counts = count_paths_saturating(g, 0, 10);
  EXPECT_EQ(counts[1], 2U);  // parallel arcs are distinct paths
}

TEST(TraversalTest, CountPathsRejectsCycles) {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  EXPECT_THROW((void)count_paths_saturating(g, 0, 10), std::invalid_argument);
  EXPECT_THROW((void)count_paths_saturating(diamond(), 0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mineq::graph
