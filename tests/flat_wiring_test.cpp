/// \file flat_wiring_test.cpp
/// \brief The stage-packed wiring IR: structural invariants, agreement
/// between the two constructors, and agreement of the FlatWiring fast
/// paths (Banyan DP, component profiles, equivalence verdicts) with the
/// MIDigraph-table implementations.

#include "min/flat_wiring.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "min/banyan.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "min/properties.hpp"
#include "test_seed.hpp"

namespace mineq::min {
namespace {

TEST(FlatWiringTest, MatchesDigraphChildrenAndSlots) {
  const MIDigraph g = build_network(NetworkKind::kOmega, 4);
  const FlatWiring w = FlatWiring::from_digraph(g);
  ASSERT_EQ(w.stages(), g.stages());
  ASSERT_EQ(w.radix(), 2);  // MIDigraphs always flatten at radix 2
  ASSERT_EQ(w.links_per_stage(), 2U * g.cells_per_stage());
  ASSERT_EQ(w.cells_per_stage(), g.cells_per_stage());
  for (int s = 0; s + 1 < g.stages(); ++s) {
    for (std::uint32_t x = 0; x < g.cells_per_stage(); ++x) {
      const auto children = g.children(s, x);
      EXPECT_EQ(w.child(s, x, 0), children[0]);
      EXPECT_EQ(w.child(s, x, 1), children[1]);
    }
  }
}

TEST(FlatWiringTest, SlotsFillInSourceOrderAndUpInvertsDown) {
  SCOPED_TRACE(mineq::test::seed_trace());
  auto rng = mineq::test::seeded_rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const MIDigraph g = random_independent_network(5, rng);
    const FlatWiring w = FlatWiring::from_digraph(g);
    for (int s = 0; s + 1 < g.stages(); ++s) {
      // Each child cell receives exactly one arc per input slot, and the
      // up records invert the down records arc for arc.
      std::vector<std::array<int, 2>> seen(g.cells_per_stage(), {0, 0});
      for (std::uint32_t x = 0; x < g.cells_per_stage(); ++x) {
        for (unsigned port = 0; port < 2; ++port) {
          const std::uint32_t child = w.child(s, x, port);
          const unsigned slot = w.slot(s, x, port);
          ++seen[child][slot];
          EXPECT_EQ(w.parent(s, child, slot), x);
          EXPECT_EQ(w.parent_port(s, child, slot), port);
        }
      }
      for (std::uint32_t y = 0; y < g.cells_per_stage(); ++y) {
        EXPECT_EQ(seen[y][0], 1);
        EXPECT_EQ(seen[y][1], 1);
      }
    }
  }
}

TEST(FlatWiringTest, PipidConstructorMatchesDigraphConstructor) {
  for (const NetworkKind kind : all_network_kinds()) {
    for (int n : {2, 3, 5}) {
      const auto pipids = network_pipid_sequence(kind, n);
      const FlatWiring direct = FlatWiring::from_pipids(pipids);
      const FlatWiring via_tables =
          FlatWiring::from_digraph(network_from_pipids(pipids));
      EXPECT_EQ(direct, via_tables) << network_name(kind) << " n=" << n;
    }
  }
}

TEST(FlatWiringTest, RepresentsDegenerateDoubleLinkStages) {
  // A degenerate PIPID (theta fixing position 0) drops the port bit:
  // f == g, double links (the paper's Fig. 5) — but every in-degree is
  // still exactly 2, so the stage flattens, with both slots of a child
  // fed by the same parent, and fails at the Banyan check instead.
  const int n = 4;
  const std::vector<perm::IndexPermutation> pipids(
      static_cast<std::size_t>(n - 1), perm::IndexPermutation::identity(n));
  const FlatWiring w = FlatWiring::from_pipids(pipids);
  EXPECT_EQ(w, FlatWiring::from_digraph(network_from_pipids(pipids)));
  for (std::uint32_t x = 0; x < w.cells_per_stage(); ++x) {
    EXPECT_EQ(w.parent(0, x, 0), w.parent(0, x, 1));
  }
  EXPECT_FALSE(is_banyan(w));
  const EquivalenceReport report = check_baseline_equivalence(w);
  EXPECT_TRUE(report.valid_degrees);
  EXPECT_EQ(report.failure, "banyan");
}

TEST(FlatWiringTest, RejectsInvalidStages) {
  // In-degree violations are unrepresentable: a connection sending every
  // arc to cell 0 gives cell 0 in-degree 4 and cell 1 in-degree 0.
  const Connection bad({0, 0}, {0, 0}, /*width=*/1);
  const MIDigraph g(2, {bad});
  ASSERT_FALSE(g.is_valid());
  EXPECT_THROW((void)FlatWiring::from_digraph(g), std::invalid_argument);
  EXPECT_THROW((void)FlatWiring::from_pipids({}), std::invalid_argument);
}

TEST(FlatWiringTest, BanyanAndProfilesMatchTableImplementations) {
  SCOPED_TRACE(mineq::test::seed_trace());
  auto rng = mineq::test::seeded_rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    // Mix PIPID-wired (usually Banyan) and random valid (usually not)
    // networks so both verdicts are exercised.
    const MIDigraph g = trial % 2 == 0 ? random_pipid_network(5, rng)
                                       : random_independent_network(5, rng);
    if (!g.is_valid()) continue;
    const FlatWiring w = FlatWiring::from_digraph(g);
    EXPECT_EQ(is_banyan(w), is_banyan(g));
    EXPECT_EQ(is_banyan(w, /*threads=*/4), is_banyan(g));
    EXPECT_EQ(path_counts_from(w, 3), path_counts_from(g, 3));
    EXPECT_EQ(prefix_component_profile(w), prefix_component_profile(g));
    EXPECT_EQ(suffix_component_profile(w), suffix_component_profile(g));
    EXPECT_EQ(satisfies_p1_star(w), satisfies_p1_star(g));
    EXPECT_EQ(satisfies_p_star_n(w), satisfies_p_star_n(g));
    EXPECT_EQ(component_count_range(w, 1, 3), component_count_range(g, 1, 3));
  }
}

TEST(FlatWiringTest, EquivalenceVerdictsMatchOnClassicalNetworks) {
  for (const NetworkKind kind : all_network_kinds()) {
    const MIDigraph g = build_network(kind, 5);
    const FlatWiring w = FlatWiring::from_digraph(g);
    const EquivalenceReport via_wiring = check_baseline_equivalence(w);
    const EquivalenceReport via_digraph = check_baseline_equivalence(g);
    EXPECT_TRUE(via_wiring.equivalent) << network_name(kind);
    EXPECT_EQ(via_wiring.equivalent, via_digraph.equivalent);
    EXPECT_EQ(via_wiring.failure, via_digraph.failure);
    EXPECT_TRUE(is_baseline_equivalent(w));
  }
}

TEST(FlatWiringTest, EquivalenceReportsDegreeFailureWithoutWiring) {
  const Connection bad({0, 0}, {0, 0}, /*width=*/1);
  const EquivalenceReport report =
      check_baseline_equivalence(MIDigraph(2, {bad}));
  EXPECT_FALSE(report.valid_degrees);
  EXPECT_EQ(report.failure, "degrees");
}

}  // namespace
}  // namespace mineq::min
