#include "min/buddy.hpp"

#include <gtest/gtest.h>

#include "min/baseline.hpp"
#include "min/independence.hpp"
#include "min/networks.hpp"
#include "min/properties.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(BuddyTest, BaselineStagesAreBuddy) {
  const MIDigraph g = baseline_network(5);
  EXPECT_TRUE(has_buddy_property(g));
  // In baseline's first stage, 2i and 2i+1 are buddies.
  const Connection& first = g.connection(0);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto partner = buddy_partner(first, 2 * i);
    ASSERT_TRUE(partner.has_value());
    EXPECT_EQ(*partner, 2 * i + 1);
  }
}

TEST(BuddyTest, AllClassicalNetworksAreBuddy) {
  for (int n = 2; n <= 7; ++n) {
    for (NetworkKind kind : all_network_kinds()) {
      EXPECT_TRUE(has_buddy_property(build_network(kind, n)))
          << network_name(kind) << " n=" << n;
    }
  }
}

TEST(BuddyTest, IndependentConnectionsAreBuddy) {
  // Both case-1 and case-2 independent stages decompose into K_{2,2}
  // blocks (x pairs with x ^ L^{-1}(c^d) or x ^ alpha_1 respectively).
  MINEQ_SEEDED_RNG(rng, 151);
  for (int w = 1; w <= 6; ++w) {
    EXPECT_TRUE(
        has_buddy_property(Connection::random_independent_case1(w, rng)));
    EXPECT_TRUE(
        has_buddy_property(Connection::random_independent_case2(w, rng)));
  }
}

TEST(BuddyTest, BuddyImpliesP_i_iplus1) {
  // Buddy (K_{2,2} decomposition) forces exactly cells/2 components on
  // the two-stage subgraph.
  MINEQ_SEEDED_RNG(rng, 157);
  for (int trial = 0; trial < 60; ++trial) {
    const MIDigraph g = MIDigraph(
        3, {Connection::random_valid(2, rng),
            Connection::random_valid(2, rng)});
    for (int s = 0; s < 2; ++s) {
      if (has_buddy_property(g.connection(s))) {
        EXPECT_TRUE(satisfies_p(g, s, s + 1))
            << "trial=" << trial << " s=" << s;
      }
    }
  }
}

TEST(BuddyTest, P_i_iplus1DoesNotImplyBuddy) {
  // Counterexample: a 6-cycle on cells {0,1,2} plus a double link on cell
  // 3 has 2 = cells/2 components but no buddy structure anywhere.
  const Connection sixcycle({0, 1, 2, 3}, {1, 2, 0, 3}, 2);
  ASSERT_TRUE(sixcycle.is_valid_stage());
  MINEQ_SEEDED_RNG(rng, 1);
  const MIDigraph g(3, {sixcycle, Connection::random_valid(2, rng)});
  EXPECT_TRUE(satisfies_p(g, 0, 1));
  EXPECT_FALSE(has_buddy_property(sixcycle));
}

TEST(BuddyTest, RandomConnectionsUsuallyNotBuddy) {
  MINEQ_SEEDED_RNG(rng, 163);
  int buddy = 0;
  for (int trial = 0; trial < 20; ++trial) {
    if (has_buddy_property(Connection::random_valid(5, rng))) ++buddy;
  }
  EXPECT_LE(buddy, 2);
}

TEST(BuddyTest, ParallelArcsHaveNoPartner) {
  const Connection c = Connection::from_functions(
      1, [](std::uint32_t x) { return x; },
      [](std::uint32_t x) { return x; });
  EXPECT_FALSE(buddy_partner(c, 0).has_value());
  EXPECT_FALSE(has_buddy_property(c));
}

TEST(BuddyTest, RangeChecked) {
  const Connection c({0, 1}, {1, 0}, 1);
  EXPECT_THROW((void)buddy_partner(c, 2), std::invalid_argument);
}

}  // namespace
}  // namespace mineq::min
