/// \file multipath_test.cpp
/// \brief The multipath subsystem end to end: fabric construction and
/// geometry, embedded-plane extraction against the paper's equivalence
/// checks, surviving-path diversity, path-diverse routing in both
/// simulation disciplines, fault resilience dominance over the matching
/// unipath banyans, and the sweep-layer fabric axis.

#include "multipath/multipath_wiring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "fault/fault_model.hpp"
#include "min/equivalence.hpp"
#include "multipath/diversity.hpp"
#include "multipath/looping.hpp"
#include "sim/engine.hpp"
#include "sim/wormhole.hpp"

namespace mineq {
namespace {

using min::MultiPathKind;
using min::MultiPathWiring;
using min::NetworkKind;

// ---------------------------------------------------------------- fabrics

TEST(MultiPathWiringTest, BenesGeometry) {
  const MultiPathWiring fabric = MultiPathWiring::benes(3, 2);
  EXPECT_EQ(fabric.kind(), MultiPathKind::kBenes);
  EXPECT_EQ(fabric.base_kind(), NetworkKind::kBaseline);
  EXPECT_EQ(fabric.wiring().stages(), 5);  // 2n-1 physical stages
  EXPECT_EQ(fabric.wiring().radix(), 2);
  EXPECT_EQ(fabric.logical_terminals(), 8U);
  EXPECT_EQ(fabric.logical_stages(), 3);
  EXPECT_EQ(fabric.paths_available(), 4U);  // r^(n-1)
  EXPECT_EQ(fabric.planes(), 1);
  EXPECT_EQ(fabric.dilation(), 1);
  EXPECT_EQ(fabric.plane_count(), 2);  // front baseline + back mirror
  // Free front half, forced back half: exactly n-1 free connections.
  const std::vector<std::uint8_t> expected_free = {1, 1, 0, 0};
  EXPECT_EQ(fabric.free_stage(), expected_free);
}

TEST(MultiPathWiringTest, DilatedGeometry) {
  const MultiPathWiring fabric =
      MultiPathWiring::dilated(NetworkKind::kOmega, 3, 2, 2);
  EXPECT_EQ(fabric.kind(), MultiPathKind::kDilated);
  EXPECT_EQ(fabric.wiring().stages(), 3);
  EXPECT_EQ(fabric.wiring().radix(), 4);  // r * dilation physical
  EXPECT_EQ(fabric.logical_radix(), 2);
  EXPECT_EQ(fabric.logical_terminals(), 8U);
  EXPECT_EQ(fabric.dilation(), 2);
  EXPECT_EQ(fabric.paths_available(), 4U);  // d^(n-1)
  EXPECT_EQ(fabric.plane_count(), 2);
}

TEST(MultiPathWiringTest, ReplicatedGeometry) {
  const MultiPathWiring fabric =
      MultiPathWiring::replicated(NetworkKind::kOmega, 3, 2, 3);
  EXPECT_EQ(fabric.kind(), MultiPathKind::kReplicated);
  EXPECT_EQ(fabric.wiring().stages(), 3);
  EXPECT_EQ(fabric.wiring().radix(), 2);
  EXPECT_EQ(fabric.wiring().cells_per_stage(), 12U);  // planes * r^(n-1)
  EXPECT_EQ(fabric.logical_terminals(), 8U);
  EXPECT_EQ(fabric.planes(), 3);
  EXPECT_EQ(fabric.paths_available(), 3U);
  EXPECT_EQ(fabric.plane_count(), 3);
}

TEST(MultiPathWiringTest, UnipathWrapAndRejections) {
  const MultiPathWiring fabric =
      MultiPathWiring::unipath(NetworkKind::kOmega, 3, 2);
  EXPECT_EQ(fabric.kind(), MultiPathKind::kUnipath);
  EXPECT_EQ(fabric.paths_available(), 1U);
  EXPECT_EQ(fabric.plane_count(), 1);
  EXPECT_THROW((void)MultiPathWiring::dilated(NetworkKind::kOmega, 3, 2, 1),
               std::invalid_argument);
  EXPECT_THROW((void)MultiPathWiring::dilated(NetworkKind::kOmega, 3, 16, 8),
               std::invalid_argument);  // r*d > 64
  EXPECT_THROW(
      (void)MultiPathWiring::replicated(NetworkKind::kOmega, 3, 2, 1),
      std::invalid_argument);
  EXPECT_THROW((void)MultiPathWiring::benes(1, 2), std::invalid_argument);
}

TEST(MultiPathWiringTest, KindTokensRoundTrip) {
  for (const MultiPathKind kind : min::all_multipath_kinds()) {
    EXPECT_EQ(min::parse_multipath_kind(min::multipath_kind_name(kind)),
              kind);
  }
  try {
    (void)min::parse_multipath_kind("clos-strict");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("valid"), std::string::npos);
    EXPECT_NE(message.find("benes"), std::string::npos);
  }
}

// Every embedded unipath plane of every fabric family passes the paper's
// baseline-equivalence characterization — the multipath fabrics really
// are compositions of baseline-equivalent building blocks.
TEST(MultiPathWiringTest, ExtractedPlanesAreBaselineEquivalent) {
  const MultiPathWiring fabrics[] = {
      MultiPathWiring::benes(3, 2),
      MultiPathWiring::dilated(NetworkKind::kOmega, 3, 2, 2),
      MultiPathWiring::replicated(NetworkKind::kOmega, 3, 2, 3),
      MultiPathWiring::unipath(NetworkKind::kBaseline, 4, 2),
  };
  for (const MultiPathWiring& fabric : fabrics) {
    for (int plane = 0; plane < fabric.plane_count(); ++plane) {
      EXPECT_TRUE(min::is_baseline_equivalent(fabric.unipath_plane(plane)))
          << min::multipath_kind_name(fabric.kind()) << " plane " << plane;
    }
  }
  EXPECT_THROW((void)fabrics[0].unipath_plane(2), std::out_of_range);
}

// ------------------------------------------------------------- diversity

TEST(MultiPathDiversityTest, PristineEqualsPathsAvailable) {
  const MultiPathWiring fabrics[] = {
      MultiPathWiring::benes(3, 2),
      MultiPathWiring::dilated(NetworkKind::kOmega, 3, 2, 2),
      MultiPathWiring::replicated(NetworkKind::kOmega, 3, 2, 3),
      MultiPathWiring::unipath(NetworkKind::kOmega, 3, 2),
  };
  for (const MultiPathWiring& fabric : fabrics) {
    EXPECT_EQ(multipath::min_path_diversity(fabric),
              fabric.paths_available());
  }
}

TEST(MultiPathDiversityTest, MaskedArcsReduceTheFloor) {
  // Dilated d=2: cutting one arc of a dilation group halves the floor of
  // the pairs routed through it; the other arc keeps them connected.
  const MultiPathWiring dilated =
      MultiPathWiring::dilated(NetworkKind::kOmega, 3, 2, 2);
  fault::FaultMask one_arc(dilated.wiring());
  one_arc.set(0, 0, 0);
  EXPECT_EQ(multipath::min_path_diversity(dilated, &one_arc), 2U);

  // A unipath banyan drops to zero as soon as full access is lost.
  const MultiPathWiring unipath =
      MultiPathWiring::unipath(NetworkKind::kOmega, 3, 2);
  fault::FaultMask cut(unipath.wiring());
  cut.set(0, 0, 0);
  EXPECT_EQ(multipath::min_path_diversity(unipath, &cut), 0U);

  // Replicated p=3: killing every stage-0 out-arc of one plane leaves
  // the other two planes.
  const MultiPathWiring replicated =
      MultiPathWiring::replicated(NetworkKind::kOmega, 3, 2, 3);
  fault::FaultMask plane_dead(replicated.wiring());
  for (std::uint32_t x = 0; x < 4; ++x) {  // plane 0 = cells 0..3
    plane_dead.set(0, x, 0);
    plane_dead.set(0, x, 1);
  }
  EXPECT_EQ(multipath::min_path_diversity(replicated, &plane_dead), 2U);
}

// ------------------------------------------------- simulation disciplines

sim::SimConfig quiet_config(double rate) {
  sim::SimConfig config;
  config.injection_rate = rate;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  config.seed = 11;
  return config;
}

std::vector<std::uint32_t> reversal_permutation(std::size_t n) {
  std::vector<std::uint32_t> image(n);
  for (std::size_t t = 0; t < n; ++t) {
    image[t] = static_cast<std::uint32_t>(n - 1 - t);
  }
  return image;
}

// The rearrangeable payoff, observed behaviorally: a looping-configured
// Benes sustains a full permutation at rate 1.0 with zero head-of-line
// blocking in BOTH disciplines — every offered packet of the measured
// window is delivered. A blocking path policy (hash) on the same fabric
// and permutation cannot do that.
TEST(MultiPathSimTest, LoopingSaturatesPermutationStoreAndForward) {
  const sim::Engine engine{MultiPathWiring::benes(3, 2)};
  sim::SimConfig config = quiet_config(1.0);
  config.path_policy = sim::PathPolicy::kLooping;
  config.permutation = reversal_permutation(8);
  const sim::SimResult looping =
      engine.run(sim::Pattern::kPermutation, config);
  EXPECT_EQ(looping.offered, 8U * config.measure_cycles);
  EXPECT_EQ(looping.injected, looping.offered);  // never refused at source
  // 100% of the set: everything not still in the 5-stage pipeline at the
  // end of the window was delivered, with zero blocking anywhere.
  EXPECT_EQ(looping.delivered + looping.flits_in_flight, looping.offered);
  EXPECT_EQ(looping.hol_blocking_cycles, 0U);
  EXPECT_EQ(looping.packets_misdelivered, 0U);
  EXPECT_GE(looping.throughput, 0.98);

  config.path_policy = sim::PathPolicy::kHash;
  const sim::SimResult hash = engine.run(sim::Pattern::kPermutation, config);
  EXPECT_LT(hash.throughput, looping.throughput);
  EXPECT_GT(hash.hol_blocking_cycles, 0U);
}

TEST(MultiPathSimTest, LoopingSaturatesPermutationWormhole) {
  const sim::Engine engine{MultiPathWiring::benes(3, 2)};
  const sim::WormholeSimulator wormhole(engine);
  sim::SimConfig config = quiet_config(1.0);
  config.path_policy = sim::PathPolicy::kLooping;
  config.permutation = reversal_permutation(8);
  const sim::SimResult looping =
      wormhole.run(sim::Pattern::kPermutation, config);
  EXPECT_EQ(looping.injected, looping.offered);
  EXPECT_EQ(looping.delivered + looping.flits_in_flight, looping.offered);
  EXPECT_EQ(looping.packets_misdelivered, 0U);
  EXPECT_GE(looping.throughput, 0.98);

  config.path_policy = sim::PathPolicy::kHash;
  const sim::SimResult hash =
      wormhole.run(sim::Pattern::kPermutation, config);
  EXPECT_LT(hash.throughput, looping.throughput);
}

// Hash and adaptive selection deliver uniform traffic on every fabric
// family in both disciplines, with the flit ledger closing exactly.
TEST(MultiPathSimTest, HashAndAdaptiveDeliverUniformTraffic) {
  const MultiPathWiring fabrics[] = {
      MultiPathWiring::benes(3, 2),
      MultiPathWiring::dilated(NetworkKind::kOmega, 3, 2, 2),
      MultiPathWiring::replicated(NetworkKind::kOmega, 3, 2, 3),
  };
  for (const MultiPathWiring& fabric : fabrics) {
    const std::uint64_t paths = fabric.paths_available();
    const sim::Engine engine{fabric};
    const sim::WormholeSimulator wormhole(engine);
    for (const sim::PathPolicy policy :
         {sim::PathPolicy::kHash, sim::PathPolicy::kAdaptive}) {
      sim::SimConfig config = quiet_config(0.4);
      config.packet_length = 2;
      config.path_policy = policy;
      const sim::SimResult saf = engine.run(sim::Pattern::kUniform, config);
      EXPECT_GT(saf.delivered, 0U);
      EXPECT_EQ(saf.paths_available, paths);
      EXPECT_EQ(saf.flits_injected, saf.flits_delivered + saf.flits_in_flight);
      const sim::SimResult worm =
          wormhole.run(sim::Pattern::kUniform, config);
      EXPECT_GT(worm.delivered, 0U);
      EXPECT_EQ(worm.paths_available, paths);
      // Wormhole serialization flits of warmup-boundary packets are
      // counted injected but not delivered (matches the unipath ledger),
      // so the equation closes up to one packet tail per terminal.
      const std::uint64_t accounted =
          worm.flits_delivered + worm.flits_in_flight;
      EXPECT_GE(worm.flits_injected, accounted);
      EXPECT_LE(worm.flits_injected - accounted,
                engine.terminals() * (config.packet_length - 1));
    }
  }
}

TEST(MultiPathSimTest, RejectsCreditsAndUnconfiguredLooping) {
  const sim::Engine engine{MultiPathWiring::benes(3, 2)};
  const sim::WormholeSimulator wormhole(engine);
  sim::SimConfig credits = quiet_config(0.4);
  credits.credits.enabled = true;
  EXPECT_THROW((void)engine.run(sim::Pattern::kUniform, credits),
               std::invalid_argument);
  EXPECT_THROW((void)wormhole.run(sim::Pattern::kUniform, credits),
               std::invalid_argument);
  // kLooping needs a Benes fabric and a bijection in config.permutation.
  sim::SimConfig looping = quiet_config(0.4);
  looping.path_policy = sim::PathPolicy::kLooping;
  EXPECT_THROW((void)engine.run(sim::Pattern::kUniform, looping),
               std::invalid_argument);
  const sim::Engine dilated{
      MultiPathWiring::dilated(NetworkKind::kOmega, 3, 2, 2)};
  looping.permutation = reversal_permutation(8);
  EXPECT_THROW((void)dilated.run(sim::Pattern::kUniform, looping),
               std::invalid_argument);
}

// ------------------------------------------------- resilience dominance

// The committed resilience comparison of the issue: under the same
// seeded link-fault axis, the multipath fabrics' delivered fraction
// strictly dominates the matching unipath banyans' (dilated-omega vs
// omega, Benes vs baseline) in both disciplines.
TEST(MultiPathResilienceTest, FabricsDominateUnipathUnderLinkFaults) {
  exp::SweepGrid grid;
  grid.networks = {NetworkKind::kOmega, NetworkKind::kBaseline};
  grid.patterns = {sim::Pattern::kUniform};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.lane_counts = {1};
  grid.rates = {0.5};
  grid.stages = 4;
  grid.fabrics = {
      {MultiPathKind::kDilated, NetworkKind::kOmega, 2},
      {MultiPathKind::kBenes, NetworkKind::kOmega, 2},
  };
  grid.path_policies = {sim::PathPolicy::kAdaptive};
  fault::FaultSpec faults;
  faults.kind = fault::FaultKind::kRandomLinks;
  faults.rate = 0.05;
  faults.seed = 5;
  grid.faults = {faults};
  grid.base.warmup_cycles = 100;
  grid.base.measure_cycles = 600;
  grid.base.seed = 21;
  const exp::SweepResult sweep = run_sweep(grid, 2);
  ASSERT_EQ(sweep.points.size(), grid.size());

  const auto fraction = [&sweep](MultiPathKind fabric, NetworkKind network,
                                 sim::SwitchingMode mode) {
    for (const exp::SweepPoint& p : sweep.points) {
      if (p.fabric == fabric && p.network == network && p.mode == mode) {
        return p.result.delivered_fraction();
      }
    }
    ADD_FAILURE() << "missing grid point";
    return -1.0;
  };
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward,
        sim::SwitchingMode::kWormhole}) {
    EXPECT_GT(fraction(MultiPathKind::kDilated, NetworkKind::kOmega, mode),
              fraction(MultiPathKind::kUnipath, NetworkKind::kOmega, mode));
    EXPECT_GT(fraction(MultiPathKind::kBenes, NetworkKind::kBaseline, mode),
              fraction(MultiPathKind::kUnipath, NetworkKind::kBaseline, mode));
  }
  // The structural column agrees: multipath points keep a positive
  // surviving-path floor where the unipath banyans lost full access.
  for (const exp::SweepPoint& p : sweep.points) {
    if (p.fabric != MultiPathKind::kUnipath) {
      EXPECT_GT(p.min_path_diversity, 0U);
      EXPECT_GT(p.result.paths_available, 1U);
    } else {
      EXPECT_EQ(p.min_path_diversity, p.survivor.full_access ? 1U : 0U);
    }
  }
}

// --------------------------------------------------------- sweep fabric axis

exp::SweepGrid fabric_grid() {
  exp::SweepGrid grid;
  grid.networks = {NetworkKind::kOmega};
  grid.patterns = {sim::Pattern::kUniform};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.lane_counts = {1};
  grid.rates = {0.3, 0.8};
  grid.stages = 3;
  grid.fabrics = {{MultiPathKind::kDilated, NetworkKind::kOmega, 2}};
  grid.path_policies = {sim::PathPolicy::kHash, sim::PathPolicy::kAdaptive};
  grid.base.warmup_cycles = 50;
  grid.base.measure_cycles = 200;
  grid.base.seed = 3;
  return grid;
}

TEST(MultiPathSweepTest, FabricAxisExtendsSizeAndTagsPoints) {
  exp::SweepGrid grid = fabric_grid();
  // 1 network * 1 pattern * (saf + wormhole) * 2 rates = 4 unipath
  // points; 1 fabric * 2 policies * 2 modes * 2 rates = 8 fabric points.
  EXPECT_EQ(grid.size(), 4U + 8U);
  const exp::SweepResult sweep = run_sweep(grid, 2);
  ASSERT_EQ(sweep.points.size(), 12U);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sweep.points[i].fabric, MultiPathKind::kUnipath);
    EXPECT_EQ(sweep.points[i].paths, 1);
  }
  for (std::size_t i = 4; i < 12; ++i) {
    EXPECT_EQ(sweep.points[i].fabric, MultiPathKind::kDilated);
    EXPECT_EQ(sweep.points[i].paths, 2);
    EXPECT_EQ(sweep.points[i].result.paths_available, 4U);
    EXPECT_FALSE(sweep.points[i].credits.enabled);  // credit axis skipped
  }
}

// Adding the fabric axis must not perturb a single byte of the unipath
// prefix — same tasks, same derived seeds, same rendered rows.
TEST(MultiPathSweepTest, UnipathPrefixIsByteIdentical) {
  exp::SweepGrid with_fabrics = fabric_grid();
  exp::SweepGrid without = with_fabrics;
  without.fabrics.clear();
  const std::string base_csv = exp::sweep_csv(run_sweep(without, 2));
  const std::string full_csv = exp::sweep_csv(run_sweep(with_fabrics, 2));
  EXPECT_EQ(full_csv.substr(0, base_csv.size()), base_csv);
  EXPECT_GT(full_csv.size(), base_csv.size());
}

TEST(MultiPathSweepTest, ThreadCountInvariantWithFabrics) {
  const exp::SweepGrid grid = fabric_grid();
  const std::string csv = exp::sweep_csv(run_sweep(grid, 1));
  EXPECT_EQ(exp::sweep_csv(run_sweep(grid, 4)), csv);
  EXPECT_NE(csv.find("min_path_diversity"), std::string::npos);
}

TEST(MultiPathSweepTest, ValidatesFabricAxis) {
  exp::SweepGrid grid = fabric_grid();
  grid.fabrics = {{MultiPathKind::kUnipath, NetworkKind::kOmega, 2}};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);
  grid = fabric_grid();
  grid.path_policies = {sim::PathPolicy::kLooping};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);
  grid = fabric_grid();
  grid.fabrics = {{MultiPathKind::kDilated, NetworkKind::kOmega, 64}};
  EXPECT_THROW((void)run_sweep(grid, 1), std::invalid_argument);
  // A fabric-only sweep (empty networks axis) is legal.
  grid = fabric_grid();
  grid.networks.clear();
  const exp::SweepResult sweep = run_sweep(grid, 2);
  EXPECT_EQ(sweep.points.size(), 8U);
}

// ------------------------------------------- registry-driven diagnostics

TEST(MultiPathParseTest, RejectionMessagesEnumerateValidTokens) {
  try {
    (void)min::parse_network_kind("hypercube");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("valid:"), std::string::npos);
    EXPECT_NE(message.find("omega"), std::string::npos);
    EXPECT_NE(message.find("revbaseline"), std::string::npos);
  }
  try {
    (void)sim::parse_pattern("zipf");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("valid:"), std::string::npos);
    EXPECT_NE(message.find("uniform"), std::string::npos);
  }
  try {
    (void)sim::parse_path_policy("random");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("valid"), std::string::npos);
    EXPECT_NE(message.find("adaptive"), std::string::npos);
  }
}

}  // namespace
}  // namespace mineq
