/// \file kary_schedule_test.cpp
/// \brief Closed-form digit schedules for the built-in k-ary
/// constructions: equivalence to the recovered schedule at small sizes,
/// schedule attachment plumbing, and the end-to-end payoff — Engine
/// construction above the old find_digit_schedule cell cap, which now
/// only gates truly unknown wirings.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "min/flat_wiring.hpp"
#include "min/kary.hpp"
#include "min/networks.hpp"
#include "min/routing.hpp"
#include "sim/engine.hpp"

namespace mineq::min {
namespace {

constexpr NetworkKind kKaryKinds[] = {
    NetworkKind::kOmega, NetworkKind::kFlip, NetworkKind::kBaseline};

/// The hand-derived schedules must be exactly what the exhaustive
/// all-pairs recovery finds (the schedule of a Banyan digit-routable
/// fabric is unique: unique paths determine every port).
TEST(KaryScheduleTest, ClosedFormEqualsRecoveredSchedule) {
  for (const NetworkKind kind : kKaryKinds) {
    for (const int radix : {2, 3, 4}) {
      for (const int stages : {2, 3, 4}) {
        SCOPED_TRACE(network_name(kind) + " r=" + std::to_string(radix) +
                     " n=" + std::to_string(stages));
        const KaryMIDigraph g = build_kary_network(kind, stages, radix);
        const FlatWiring w = FlatWiring::from_kary(g);
        const DigitSchedule closed =
            kary_network_schedule(kind, stages, radix);
        EXPECT_TRUE(verify_digit_schedule(w, closed));
        const auto recovered = find_digit_schedule(w);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(closed, *recovered);
      }
    }
  }
}

TEST(KaryScheduleTest, BuildersAttachTheirSchedule) {
  for (const NetworkKind kind : kKaryKinds) {
    const KaryMIDigraph g = build_kary_network(kind, 4, 3);
    ASSERT_TRUE(g.schedule().has_value());
    EXPECT_EQ(*g.schedule(), kary_network_schedule(kind, 4, 3));
  }
  EXPECT_THROW(
      (void)kary_network_schedule(NetworkKind::kIndirectBinaryCube, 4, 3),
      std::invalid_argument);
}

TEST(KaryScheduleTest, AttachRejectsMismatchedShapes) {
  KaryMIDigraph g = build_kary_network(NetworkKind::kOmega, 4, 3);
  // Wrong radix.
  EXPECT_THROW(
      g.attach_schedule(kary_network_schedule(NetworkKind::kOmega, 4, 4)),
      std::invalid_argument);
  // Wrong stage count.
  EXPECT_THROW(
      g.attach_schedule(kary_network_schedule(NetworkKind::kOmega, 3, 3)),
      std::invalid_argument);
}

/// attach_schedule checks only the shape (correctness is the attacher's
/// contract) — but Engine's adoption still rejects a value map that is
/// not a port bijection, the cheap structural part of that contract.
TEST(KaryScheduleTest, EngineRejectsCorruptAttachedSchedule) {
  KaryMIDigraph g = build_kary_network(NetworkKind::kOmega, 3, 3);
  DigitSchedule bad = kary_network_schedule(NetworkKind::kOmega, 3, 3);
  bad.port_of_value[0] = {0, 0, 1};  // not a bijection
  g.attach_schedule(bad);
  EXPECT_THROW(sim::Engine{g}, std::invalid_argument);

  KaryMIDigraph g2 = build_kary_network(NetworkKind::kOmega, 3, 3);
  DigitSchedule out_of_range = kary_network_schedule(NetworkKind::kOmega, 3, 3);
  out_of_range.digit[0] = 5;  // reads past the cell label
  g2.attach_schedule(out_of_range);
  EXPECT_THROW(sim::Engine{g2}, std::invalid_argument);
}

/// A radix-2 KaryMIDigraph adopts the attached schedule through the
/// binary conversion — runs must stay byte-identical to the MIDigraph
/// engine, whose schedule is recovered by the all-pairs search.
TEST(KaryScheduleTest, RadixTwoAdoptionMatchesBinaryEngine) {
  for (const NetworkKind kind : kKaryKinds) {
    const sim::Engine binary(build_network(kind, 5));
    const sim::Engine kary(build_kary_network(kind, 5, 2));
    ASSERT_EQ(binary.schedule().bit, kary.schedule().bit)
        << network_name(kind);
    ASSERT_EQ(binary.schedule().invert, kary.schedule().invert)
        << network_name(kind);
    sim::SimConfig config;
    config.injection_rate = 0.6;
    config.packet_length = 3;
    config.warmup_cycles = 50;
    config.measure_cycles = 300;
    const sim::SimResult a = binary.run(sim::Pattern::kUniform, config);
    const sim::SimResult b = kary.run(sim::Pattern::kUniform, config);
    EXPECT_EQ(a.injected, b.injected) << network_name(kind);
    EXPECT_EQ(a.delivered, b.delivered) << network_name(kind);
    EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean())
        << network_name(kind);
  }
}

/// The payoff: fabrics far above the old 4096-cell recovery budget
/// construct in linear time off the attached schedule and simulate end
/// to end. Radix 2 at 14 stages is 8192 cells per stage (the all-pairs
/// bit-schedule recovery would grind for minutes); radix 4 at 8 stages
/// is 16384 cells, which the cap used to reject outright.
TEST(KaryScheduleTest, AboveCapNetworksSimulateEndToEnd) {
  struct Case {
    int stages;
    int radix;
  };
  for (const Case c : {Case{14, 2}, Case{8, 4}}) {
    SCOPED_TRACE("r=" + std::to_string(c.radix) +
                 " n=" + std::to_string(c.stages));
    const sim::Engine engine(
        build_kary_network(NetworkKind::kOmega, c.stages, c.radix));
    EXPECT_GT(engine.wiring().cells_per_stage(), 4096U);
    sim::SimConfig config;
    config.injection_rate = 0.3;
    config.packet_length = 2;
    config.warmup_cycles = 0;  // exact flit ledger
    config.measure_cycles = 60;
    const sim::SimResult r = engine.run(sim::Pattern::kUniform, config);
    EXPECT_GT(r.delivered, 0U);
    EXPECT_EQ(r.flits_injected, r.flits_delivered + r.flits_in_flight);
  }
}

/// The recovery budget still guards unknown wirings: the same 16384-cell
/// geometry without an attached schedule is rejected with advice, not an
/// apparent hang.
TEST(KaryScheduleTest, UnknownWiringAboveCapStillThrows) {
  const KaryMIDigraph built =
      build_kary_network(NetworkKind::kOmega, 8, 4);
  std::vector<KaryConnection> connections;
  for (int s = 0; s + 1 < built.stages(); ++s) {
    connections.push_back(built.connection(s));
  }
  const KaryMIDigraph bare(8, 4, std::move(connections));
  ASSERT_FALSE(bare.schedule().has_value());
  EXPECT_THROW(sim::Engine{bare}, std::invalid_argument);
}

}  // namespace
}  // namespace mineq::min
