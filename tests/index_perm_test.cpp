#include "perm/index_perm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::perm {
namespace {

TEST(IndexPermutationTest, IdentityInducesIdentity) {
  const IndexPermutation ip = IndexPermutation::identity(3);
  EXPECT_TRUE(ip.induced().is_identity());
  for (std::uint64_t y = 0; y < 8; ++y) {
    EXPECT_EQ(ip.apply(y), y);
  }
}

TEST(IndexPermutationTest, ApplyMatchesDefinition) {
  // theta = (0 1 2) as a cycle: theta(0)=1, theta(1)=2, theta(2)=0.
  const IndexPermutation ip(Permutation::from_cycles(3, {{0, 1, 2}}));
  // Output bit i = input bit theta(i).
  for (std::uint64_t y = 0; y < 8; ++y) {
    std::uint64_t expected = 0;
    expected |= ((y >> 1) & 1) << 0;  // theta(0) = 1
    expected |= ((y >> 2) & 1) << 1;  // theta(1) = 2
    expected |= ((y >> 0) & 1) << 2;  // theta(2) = 0
    EXPECT_EQ(ip.apply(y), expected);
  }
}

TEST(IndexPermutationTest, ThetaInv) {
  const IndexPermutation ip(Permutation::from_cycles(4, {{0, 2}, {1, 3}}));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ip.theta_inv_of(ip.theta_of(i)), i);
  }
}

TEST(IndexPermutationTest, InducedIsBijective) {
  MINEQ_SEEDED_RNG(rng, 13);
  for (int trial = 0; trial < 5; ++trial) {
    const IndexPermutation ip = IndexPermutation::random(5, rng);
    const Permutation induced = ip.induced();  // ctor validates bijection
    EXPECT_EQ(induced.size(), 32U);
  }
}

TEST(IndexPermutationTest, MatrixAgreesWithApply) {
  MINEQ_SEEDED_RNG(rng, 17);
  for (int trial = 0; trial < 10; ++trial) {
    const IndexPermutation ip = IndexPermutation::random(6, rng);
    const gf2::Matrix m = ip.matrix();
    EXPECT_TRUE(m.is_invertible());
    for (std::uint64_t y = 0; y < 64; ++y) {
      EXPECT_EQ(m.apply(y), ip.apply(y));
    }
  }
}

TEST(IndexPermutationTest, AfterComposesInduced) {
  MINEQ_SEEDED_RNG(rng, 19);
  for (int trial = 0; trial < 10; ++trial) {
    const IndexPermutation a = IndexPermutation::random(4, rng);
    const IndexPermutation b = IndexPermutation::random(4, rng);
    const IndexPermutation ab = a.after(b);
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(ab.apply(y), a.apply(b.apply(y)));
    }
  }
}

TEST(IndexPermutationTest, InverseInvertsInduced) {
  MINEQ_SEEDED_RNG(rng, 23);
  const IndexPermutation ip = IndexPermutation::random(5, rng);
  const IndexPermutation inv = ip.inverse();
  for (std::uint64_t y = 0; y < 32; ++y) {
    EXPECT_EQ(inv.apply(ip.apply(y)), y);
  }
}

TEST(IndexPermutationTest, RecognizeRoundTrip) {
  MINEQ_SEEDED_RNG(rng, 29);
  for (int n = 1; n <= 6; ++n) {
    for (int trial = 0; trial < 5; ++trial) {
      const IndexPermutation original = IndexPermutation::random(n, rng);
      const auto recognized = IndexPermutation::recognize(original.induced());
      ASSERT_TRUE(recognized.has_value()) << "n=" << n;
      EXPECT_EQ(*recognized, original);
    }
  }
}

TEST(IndexPermutationTest, RecognizeRejectsTranslations) {
  // y -> y ^ 1 fixes no unit structure: not a PIPID for n >= 2.
  EXPECT_FALSE(IndexPermutation::recognize(exchange(3)).has_value());
  EXPECT_FALSE(
      IndexPermutation::recognize(xor_translation(4, 0b1010)).has_value());
}

TEST(IndexPermutationTest, RecognizeRejectsNonLinear) {
  // Swap 5 and 6 only: fixes 0 and all units for n=3 but is not linear.
  std::vector<std::uint32_t> image = {0, 1, 2, 3, 4, 6, 5, 7};
  EXPECT_FALSE(IndexPermutation::recognize(Permutation(image)).has_value());
}

TEST(IndexPermutationTest, RecognizeRejectsNonPowerOfTwo) {
  EXPECT_FALSE(IndexPermutation::recognize(Permutation(6)).has_value());
}

TEST(IndexPermutationTest, RecognizeAcceptsAllWidth2Pipids) {
  // n=2: only two PIPIDs exist (identity and bit swap); both recognized,
  // and the remaining 22 permutations of S_4 rejected.
  int recognized = 0;
  std::vector<std::uint32_t> image = {0, 1, 2, 3};
  do {
    if (IndexPermutation::recognize(Permutation(image)).has_value()) {
      ++recognized;
    }
  } while (std::next_permutation(image.begin(), image.end()));
  EXPECT_EQ(recognized, 2);
}

}  // namespace
}  // namespace mineq::perm
