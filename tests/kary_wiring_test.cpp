/// \file kary_wiring_test.cpp
/// \brief The radix-r FlatWiring IR and everything stacked on it: record
/// agreement with the table-built KaryMIDigraph, verdict agreement
/// between the digraph DP and the packed bitset/DSU paths, destination-
/// digit schedules, the k-ary simulators (flit-ledger conservation at
/// r = 3), and the packed-record capacity guard.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fault/fault_model.hpp"
#include "min/banyan.hpp"
#include "min/equivalence.hpp"
#include "min/flat_wiring.hpp"
#include "min/kary.hpp"
#include "min/networks.hpp"
#include "min/properties.hpp"
#include "min/routing.hpp"
#include "sim/engine.hpp"
#include "test_seed.hpp"

namespace mineq {
namespace {

using min::FlatWiring;
using min::KaryConnection;
using min::KaryMIDigraph;
using min::NetworkKind;

std::vector<KaryMIDigraph> classical_kary_networks(int stages, int radix) {
  return {min::kary_omega(stages, radix), min::kary_flip(stages, radix),
          min::kary_baseline(stages, radix)};
}

// ---------------------------------------------------------------------------
// from_kary: record-for-record agreement with the connection tables
// ---------------------------------------------------------------------------

TEST(KaryWiringTest, FromKaryMatchesConnectionTablesRecordForRecord) {
  SCOPED_TRACE(mineq::test::seed_trace());
  auto rng = mineq::test::seeded_rng(41);
  for (int radix : {3, 4, 5}) {
    const int stages = 3;
    std::vector<KaryConnection> connections;
    for (int s = 0; s + 1 < stages; ++s) {
      connections.push_back(
          KaryConnection::random_valid(radix, stages - 1, rng));
    }
    const KaryMIDigraph g(stages, radix, std::move(connections));
    const FlatWiring w = FlatWiring::from_kary(g);
    ASSERT_EQ(w.stages(), stages);
    ASSERT_EQ(w.radix(), radix);
    ASSERT_EQ(w.cells_per_stage(), g.cells_per_stage());
    ASSERT_EQ(w.links_per_stage(),
              static_cast<std::size_t>(radix) * g.cells_per_stage());
    for (int s = 0; s + 1 < stages; ++s) {
      // Children match the tables; each child receives exactly one arc
      // per input slot, in deterministic (source, port) fill order, and
      // the up records invert the down records arc for arc.
      std::vector<std::vector<int>> seen(
          g.cells_per_stage(), std::vector<int>(radix, 0));
      for (std::uint32_t x = 0; x < g.cells_per_stage(); ++x) {
        for (unsigned t = 0; t < static_cast<unsigned>(radix); ++t) {
          EXPECT_EQ(w.child(s, x, t), g.connection(s).table(t)[x]);
          const std::uint32_t child = w.child(s, x, t);
          const unsigned slot = w.slot(s, x, t);
          ++seen[child][slot];
          EXPECT_EQ(w.parent(s, child, slot), x);
          EXPECT_EQ(w.parent_port(s, child, slot), t);
        }
      }
      for (std::uint32_t y = 0; y < g.cells_per_stage(); ++y) {
        for (int slot = 0; slot < radix; ++slot) {
          EXPECT_EQ(seen[y][static_cast<std::size_t>(slot)], 1)
              << "radix=" << radix << " s=" << s << " y=" << y;
        }
      }
    }
  }
}

TEST(KaryWiringTest, Radix2KaryConstructionsEqualBinaryWirings) {
  // The radix-2 packing is bit-for-bit the historic one, so the k-ary
  // constructions at r = 2 must flatten to the exact binary wirings —
  // operator== compares the record arrays.
  for (int n : {2, 3, 5}) {
    for (const NetworkKind kind :
         {NetworkKind::kOmega, NetworkKind::kFlip, NetworkKind::kBaseline}) {
      const FlatWiring via_kary =
          FlatWiring::from_kary(min::build_kary_network(kind, n, 2));
      const FlatWiring via_binary =
          FlatWiring::from_digraph(min::build_network(kind, n));
      EXPECT_EQ(via_kary, via_binary) << min::network_name(kind) << " n=" << n;
    }
  }
}

TEST(KaryWiringTest, FromKaryRejectsInvalidStages) {
  // A connection whose tables all map to cell 0 has in-degree radix^2 at
  // cell 0 — unrepresentable.
  std::vector<std::vector<std::uint32_t>> tables(
      3, std::vector<std::uint32_t>(3, 0));
  const KaryConnection bad(std::move(tables), 3, 1);
  ASSERT_FALSE(bad.is_valid_stage());
  const KaryMIDigraph g(2, 3, {bad});
  EXPECT_THROW((void)FlatWiring::from_kary(g), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Verdict agreement: digraph table DP vs the packed bitset/DSU paths
// ---------------------------------------------------------------------------

TEST(KaryWiringTest, BanyanAndPropertyVerdictsMatchDigraphImplementations) {
  SCOPED_TRACE(mineq::test::seed_trace());
  auto rng = mineq::test::seeded_rng(43);
  for (int radix : {3, 4}) {
    for (int stages : {2, 3, 4}) {
      if (stages == 4 && radix == 4) continue;  // keep the suite fast
      std::vector<KaryMIDigraph> candidates =
          classical_kary_networks(stages, radix);
      // Random valid stages are usually non-Banyan, random aligned
      // independent ones usually Banyan: both verdicts get exercised.
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<KaryConnection> connections;
        for (int s = 0; s + 1 < stages; ++s) {
          connections.push_back(
              trial % 2 == 0
                  ? KaryConnection::random_valid(radix, stages - 1, rng)
                  : KaryConnection::random_independent_aligned(
                        radix, stages - 1, rng));
        }
        candidates.emplace_back(stages, radix, std::move(connections));
      }
      for (const KaryMIDigraph& g : candidates) {
        const FlatWiring w = FlatWiring::from_kary(g);
        EXPECT_EQ(min::is_banyan(w), min::kary_is_banyan(g));
        EXPECT_EQ(min::is_banyan(w, /*threads=*/4), min::kary_is_banyan(g));
        EXPECT_EQ(min::satisfies_p1_star(w), min::kary_satisfies_p1_star(g));
        EXPECT_EQ(min::satisfies_p_star_n(w),
                  min::kary_satisfies_p_star_n(g));
        EXPECT_EQ(min::is_baseline_equivalent(w),
                  min::kary_is_baseline_equivalent(g));
        for (int lo = 0; lo < stages; ++lo) {
          EXPECT_EQ(min::component_count_range(w, lo, stages - 1),
                    min::kary_component_count_range(g, lo, stages - 1));
        }
      }
    }
  }
}

TEST(KaryWiringTest, PathCountsSeparateBanyanFromMultipath) {
  // On a Banyan kary fabric every (source, sink) pair has exactly one
  // path; the capped DP over the packed records must see all ones.
  const KaryMIDigraph g = min::kary_omega(3, 3);
  const FlatWiring w = FlatWiring::from_kary(g);
  ASSERT_TRUE(min::kary_is_banyan(g));
  for (std::uint32_t source = 0; source < w.cells_per_stage(); ++source) {
    const auto counts = min::path_counts_from(w, source, /*cap=*/2);
    for (const std::uint64_t c : counts) EXPECT_EQ(c, 1U);
  }
}

// ---------------------------------------------------------------------------
// Destination-digit schedules
// ---------------------------------------------------------------------------

TEST(DigitScheduleTest, ClassicalKaryNetworksAreDigitRoutable) {
  for (int radix : {3, 4}) {
    for (int stages : {2, 3, 4}) {
      for (const KaryMIDigraph& g : classical_kary_networks(stages, radix)) {
        const FlatWiring w = FlatWiring::from_kary(g);
        const auto schedule = min::find_digit_schedule(w);
        ASSERT_TRUE(schedule.has_value())
            << "radix=" << radix << " stages=" << stages;
        EXPECT_EQ(schedule->radix, radix);
        EXPECT_EQ(schedule->digit.size(),
                  static_cast<std::size_t>(stages - 1));
        EXPECT_TRUE(min::verify_digit_schedule(w, *schedule));
        // Every per-stage value map is a bijection of {0..r-1}.
        for (const auto& map : schedule->port_of_value) {
          std::vector<int> seen(static_cast<std::size_t>(radix), 0);
          for (const unsigned port : map) {
            ASSERT_LT(port, static_cast<unsigned>(radix));
            ++seen[port];
          }
          for (const int count : seen) EXPECT_EQ(count, 1);
        }
      }
    }
  }
}

TEST(DigitScheduleTest, BinaryWiringsAreDigitRoutableToo) {
  // The r = 2 instance of the digit machinery must agree with the
  // engine's historic bit schedules: same networks, same routability.
  for (const NetworkKind kind : min::all_network_kinds()) {
    const FlatWiring w =
        FlatWiring::from_digraph(min::build_network(kind, 4));
    const auto schedule = min::find_digit_schedule(w);
    ASSERT_TRUE(schedule.has_value()) << min::network_name(kind);
    EXPECT_TRUE(min::verify_digit_schedule(w, *schedule));
  }
}

TEST(DigitScheduleTest, RejectsFabricsWithoutFullAccess) {
  // The degenerate double-link PIPID network (Fig. 5) reaches only a
  // fraction of the sinks from each source: no schedule.
  const int n = 4;
  const std::vector<perm::IndexPermutation> pipids(
      static_cast<std::size_t>(n - 1), perm::IndexPermutation::identity(n));
  const FlatWiring w = FlatWiring::from_pipids(pipids);
  EXPECT_FALSE(min::find_digit_schedule(w).has_value());
}

// ---------------------------------------------------------------------------
// The k-ary engine
// ---------------------------------------------------------------------------

TEST(KaryEngineTest, RoutePortDeliversEveryPairAtRadix3) {
  const KaryMIDigraph g = min::kary_baseline(3, 3);
  const sim::Engine engine(g);
  const FlatWiring& w = engine.wiring();
  EXPECT_EQ(engine.radix(), 3);
  EXPECT_EQ(engine.terminals(), 27U);
  EXPECT_THROW((void)engine.network(), std::logic_error);
  for (std::uint32_t src = 0; src < engine.terminals(); ++src) {
    for (std::uint32_t dest = 0; dest < engine.terminals(); ++dest) {
      std::uint32_t cell = src / 3;
      for (int s = 0; s + 1 < w.stages(); ++s) {
        cell = w.child(s, cell, engine.route_port(s, dest));
      }
      EXPECT_EQ(cell, dest / 3) << "src=" << src << " dest=" << dest;
      EXPECT_EQ(engine.route_port(w.stages() - 1, dest), dest % 3);
    }
  }
}

TEST(KaryEngineTest, Radix2KaryEngineMatchesBinaryEngineExactly) {
  // A radix-2 KaryMIDigraph takes the binary engine path; its runs must
  // be byte-identical to the MIDigraph constructor's.
  const sim::Engine kary(min::kary_omega(5, 2));
  const sim::Engine binary(min::build_network(NetworkKind::kOmega, 5));
  EXPECT_EQ(kary.wiring(), binary.wiring());
  sim::SimConfig config;
  config.injection_rate = 0.6;
  config.packet_length = 2;
  config.warmup_cycles = 50;
  config.measure_cycles = 300;
  config.seed = 11;
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward, sim::SwitchingMode::kWormhole}) {
    config.mode = mode;
    const sim::SimResult a = kary.run(sim::Pattern::kUniform, config);
    const sim::SimResult b = binary.run(sim::Pattern::kUniform, config);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.flits_injected, b.flits_injected);
    EXPECT_EQ(a.hol_blocking_cycles, b.hol_blocking_cycles);
    EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  }
}

TEST(KaryEngineTest, FlitLedgerClosesAtRadix3BothDisciplines) {
  // warmup 0 makes conservation exact: every flit ever injected is
  // delivered, still buffered, or (with faults) dropped at a fault.
  const sim::Engine engine(min::kary_omega(3, 3));
  sim::SimConfig config;
  config.injection_rate = 0.7;
  config.packet_length = 3;
  config.warmup_cycles = 0;
  config.measure_cycles = 400;
  config.seed = 5;
  config.lanes = 2;
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward, sim::SwitchingMode::kWormhole}) {
    config.mode = mode;
    for (const sim::Pattern pattern :
         {sim::Pattern::kUniform, sim::Pattern::kComplement,
          sim::Pattern::kBitReversal, sim::Pattern::kHotSpot,
          sim::Pattern::kBursty}) {
      const sim::SimResult r = engine.run(pattern, config);
      EXPECT_GT(r.delivered, 0U)
          << switching_mode_name(mode) << " " << pattern_name(pattern);
      EXPECT_EQ(r.flits_injected, r.flits_delivered + r.flits_in_flight)
          << switching_mode_name(mode) << " " << pattern_name(pattern);
      EXPECT_EQ(r.packets_misdelivered, 0U);
    }
  }
}

TEST(KaryEngineTest, ShuffleAndTransposePatternsRunAtRadix4) {
  // Digit-wise pattern transforms must stay inside the terminal space
  // (transpose needs the even digit count stages = 4 provides).
  const sim::Engine engine(min::kary_baseline(4, 4));
  sim::SimConfig config;
  config.injection_rate = 0.4;
  config.warmup_cycles = 0;
  config.measure_cycles = 200;
  for (const sim::Pattern pattern :
       {sim::Pattern::kShuffle, sim::Pattern::kTranspose}) {
    const sim::SimResult r = engine.run(pattern, config);
    EXPECT_GT(r.delivered, 0U);
    EXPECT_EQ(r.flits_injected, r.flits_delivered + r.flits_in_flight);
  }
}

TEST(KaryEngineTest, FaultConservationAtRadix3UnderAllKinds) {
  // The acceptance ledger: a full {kind x mode} cross at r = 3 closes
  // flit conservation exactly (warmup 0) with every fault kind,
  // including the new partial-port model.
  const sim::Engine engine(min::kary_omega(3, 3));
  sim::SimConfig config;
  config.injection_rate = 0.6;
  config.packet_length = 2;
  config.warmup_cycles = 0;
  config.measure_cycles = 300;
  config.seed = 17;
  for (const fault::FaultKind kind : fault::all_fault_kinds()) {
    const double rate = kind == fault::FaultKind::kNone ? 0.0 : 0.2;
    const fault::FaultMask mask = fault::build_fault_mask(
        engine.wiring(), fault::FaultSpec{kind, rate, 7});
    for (const sim::SwitchingMode mode :
         {sim::SwitchingMode::kStoreAndForward,
          sim::SwitchingMode::kWormhole}) {
      config.mode = mode;
      const sim::SimResult r =
          engine.run(sim::Pattern::kUniform, config, &mask);
      EXPECT_EQ(r.flits_injected, r.flits_delivered + r.flits_in_flight +
                                      r.flits_dropped_faulted)
          << fault::fault_kind_name(kind) << " " << switching_mode_name(mode);
      if (kind == fault::FaultKind::kNone) {
        EXPECT_EQ(r.packets_rerouted, 0U);
        EXPECT_EQ(r.flits_dropped_faulted, 0U);
      }
      if (kind == fault::FaultKind::kPartialPort && !mask.none()) {
        // Partial-port switches keep routing: detours, never drops.
        EXPECT_GT(r.packets_rerouted, 0U);
        EXPECT_EQ(r.packets_dropped_faulted, 0U);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sweep integration at radix > 2 (grid-level tests live in sweep_test)
// ---------------------------------------------------------------------------

TEST(KaryWiringTest, ClassifyFaultedWorksOnKaryWirings) {
  const FlatWiring w = FlatWiring::from_kary(min::kary_baseline(3, 3));
  const fault::FaultMask pristine(w);
  const min::FaultedClassification intact = min::classify_faulted(w, pristine);
  EXPECT_TRUE(intact.full_access);
  EXPECT_TRUE(intact.banyan);
  EXPECT_TRUE(intact.baseline_equivalent);
  EXPECT_EQ(intact.surviving_arcs, intact.total_arcs);

  fault::FaultMask masked(w);
  masked.set(0, 0, 0);
  const min::FaultedClassification degraded = min::classify_faulted(w, masked);
  // Removing any arc from a Banyan fabric severs some pair.
  EXPECT_FALSE(degraded.full_access);
  EXPECT_FALSE(degraded.baseline_equivalent);
  EXPECT_EQ(degraded.surviving_arcs, degraded.total_arcs - 1);
}

// ---------------------------------------------------------------------------
// Packed-record capacity and the packing helpers
// ---------------------------------------------------------------------------

TEST(FlatWiringCapacityTest, RejectsGeometriesThatOverflowPackedRecords) {
  // cells * radix == 2^32 still fits (max record 2^32 - 1)...
  EXPECT_NO_THROW(
      FlatWiring::check_geometry(2, std::uint64_t{1} << 30, 4));
  // ...one cell more overflows, long before memory limits would bite.
  EXPECT_THROW(
      FlatWiring::check_geometry(2, (std::uint64_t{1} << 30) + 1, 4),
      std::invalid_argument);
  EXPECT_THROW(
      FlatWiring::check_geometry(2, (std::uint64_t{1} << 31) + 1, 2),
      std::invalid_argument);
  EXPECT_THROW(FlatWiring::check_geometry(2, 8, 1), std::invalid_argument);
  EXPECT_THROW(FlatWiring::check_geometry(2, 8, 65), std::invalid_argument);
  EXPECT_THROW(FlatWiring::check_geometry(0, 8, 2), std::invalid_argument);
  EXPECT_NO_THROW(FlatWiring::check_geometry(5, 16, 2));
}

TEST(FlatWiringCapacityTest, PackingHelpersRoundTripAtEveryRadix) {
  for (const unsigned radix : {2U, 3U, 5U, 16U}) {
    for (std::uint32_t cell : {0U, 1U, 7U, 1000U}) {
      for (unsigned slot = 0; slot < radix; ++slot) {
        const std::uint32_t record =
            FlatWiring::pack_record(cell, slot, radix);
        EXPECT_EQ(FlatWiring::unpack_cell(record, radix), cell);
        EXPECT_EQ(FlatWiring::unpack_slot(record, radix), slot);
      }
    }
  }
  // The member forms agree with the wiring's own radix, and the record
  // value doubles as the downstream port-slot index (the identity the
  // simulators rely on).
  const FlatWiring w = FlatWiring::from_kary(min::kary_omega(3, 3));
  const auto down = w.down_stage(0);
  for (std::size_t i = 0; i < down.size(); ++i) {
    EXPECT_EQ(FlatWiring::pack_record(w.unpack_cell(down[i]),
                                      w.unpack_slot(down[i]), 3),
              down[i]);
  }
}

}  // namespace
}  // namespace mineq
