#include "min/mi_digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <stdexcept>

#include "graph/isomorphism.hpp"
#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "perm/permutation.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(MIDigraphTest, ConstructionValidation) {
  EXPECT_NO_THROW(MIDigraph(1, {}));
  EXPECT_THROW((void)MIDigraph(0, {}), std::invalid_argument);
  EXPECT_THROW((void)MIDigraph(2, {}), std::invalid_argument);
  // Width mismatch: stage count 3 needs width-2 connections.
  MINEQ_SEEDED_RNG(rng, 1);
  std::vector<Connection> wrong = {Connection::random_valid(1, rng),
                                   Connection::random_valid(1, rng)};
  EXPECT_THROW((void)MIDigraph(3, std::move(wrong)), std::invalid_argument);
}

TEST(MIDigraphTest, BasicCounts) {
  const MIDigraph g = baseline_network(5);
  EXPECT_EQ(g.stages(), 5);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.cells_per_stage(), 16U);
  EXPECT_EQ(g.num_nodes(), 80U);
  EXPECT_EQ(g.num_arcs(), 4U * 16U * 2U);
  EXPECT_THROW((void)g.connection(4), std::invalid_argument);
  EXPECT_THROW((void)g.connection(-1), std::invalid_argument);
}

TEST(MIDigraphTest, ChildrenMatchConnections) {
  const MIDigraph g = baseline_network(4);
  for (int s = 0; s + 1 < 4; ++s) {
    for (std::uint32_t x = 0; x < 8; ++x) {
      const auto kids = g.children(s, x);
      EXPECT_EQ(kids[0], g.connection(s).f(x));
      EXPECT_EQ(kids[1], g.connection(s).g(x));
    }
  }
}

TEST(MIDigraphTest, SingleStageGraph) {
  const MIDigraph g(1, {});
  EXPECT_EQ(g.cells_per_stage(), 1U);
  EXPECT_EQ(g.num_arcs(), 0U);
  EXPECT_TRUE(g.is_valid());
  const auto layered = g.to_layered();
  EXPECT_EQ(layered.layers(), 1U);
}

TEST(MIDigraphTest, ReverseSwapsStages) {
  const MIDigraph g = build_network(NetworkKind::kOmega, 4);
  const MIDigraph rev = g.reverse();
  EXPECT_EQ(rev.stages(), 4);
  // Arc x->y in connection s corresponds to arc y->x in reversed
  // connection (stages-2-s).
  for (int s = 0; s + 1 < 4; ++s) {
    const Connection& fwd = g.connection(s);
    const Connection& bwd = rev.connection(4 - 2 - s);
    for (std::uint32_t x = 0; x < 8; ++x) {
      for (std::uint32_t child : fwd.children(x)) {
        const auto parents = bwd.children(child);
        EXPECT_TRUE(parents[0] == x || parents[1] == x)
            << "s=" << s << " x=" << x;
      }
    }
  }
}

TEST(MIDigraphTest, ReverseRequiresValidDegrees) {
  std::vector<Connection> bad = {
      Connection({0, 0}, {0, 1}, 1)};  // in-degree 3 at cell 0
  const MIDigraph g(2, std::move(bad));
  EXPECT_FALSE(g.is_valid());
  EXPECT_THROW((void)g.reverse(), std::invalid_argument);
}

TEST(MIDigraphTest, RelabelledIsIsomorphic) {
  MINEQ_SEEDED_RNG(rng, 7);
  const MIDigraph g = build_network(NetworkKind::kFlip, 4);
  const MIDigraph h = test::scrambled_copy(g, rng);
  EXPECT_FALSE(g == h);  // almost surely different labels
  const auto mapping =
      graph::find_layered_isomorphism(g.to_layered(), h.to_layered());
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(graph::verify_layered_isomorphism(g.to_layered(),
                                                h.to_layered(), *mapping));
}

TEST(MIDigraphTest, RelabelledWithIdentityIsSame) {
  const MIDigraph g = baseline_network(4);
  std::vector<perm::Permutation> identity(4, perm::Permutation(8));
  EXPECT_EQ(g.relabelled(identity), g);
}

TEST(MIDigraphTest, RelabelledValidation) {
  const MIDigraph g = baseline_network(3);
  EXPECT_THROW((void)g.relabelled({}), std::invalid_argument);
  std::vector<perm::Permutation> wrong_size(3, perm::Permutation(2));
  EXPECT_THROW((void)g.relabelled(wrong_size), std::invalid_argument);
}

TEST(MIDigraphTest, RelabelComposition) {
  // Relabelling twice composes: relabel(p).relabel(q) == relabel(q∘p).
  MINEQ_SEEDED_RNG(rng, 11);
  const MIDigraph g = baseline_network(3);
  std::vector<perm::Permutation> p;
  std::vector<perm::Permutation> q;
  std::vector<perm::Permutation> qp;
  for (int s = 0; s < 3; ++s) {
    p.push_back(perm::Permutation::random(4, rng));
    q.push_back(perm::Permutation::random(4, rng));
    qp.push_back(q.back().compose(p.back()));
  }
  EXPECT_EQ(g.relabelled(p).relabelled(q), g.relabelled(qp));
}

TEST(MIDigraphTest, LayeredRangeShape) {
  const MIDigraph g = baseline_network(5);
  const auto range = g.layered_range(1, 3);
  EXPECT_EQ(range.layers(), 3U);
  EXPECT_EQ(range.layer_size(0), 16U);
  EXPECT_EQ(range.num_arcs(), 2U * 16U * 2U);
  EXPECT_NO_THROW(range.validate());
  EXPECT_THROW((void)g.layered_range(3, 1), std::invalid_argument);
  EXPECT_THROW((void)g.layered_range(0, 5), std::invalid_argument);
}

TEST(MIDigraphTest, ToLayeredRoundTripArcs) {
  const MIDigraph g = build_network(NetworkKind::kIndirectBinaryCube, 4);
  const auto layered = g.to_layered();
  EXPECT_EQ(layered.num_arcs(), g.num_arcs());
  for (int s = 0; s + 1 < 4; ++s) {
    for (std::uint32_t x = 0; x < 8; ++x) {
      const auto& kids = layered.adj[static_cast<std::size_t>(s)][x];
      ASSERT_EQ(kids.size(), 2U);
      EXPECT_EQ(kids[0], g.connection(s).f(x));
      EXPECT_EQ(kids[1], g.connection(s).g(x));
    }
  }
}

TEST(MIDigraphTest, StrMentionsShape) {
  const MIDigraph g = baseline_network(3);
  const std::string s = g.str();
  EXPECT_NE(s.find("3-stage"), std::string::npos);
  EXPECT_NE(s.find("4 cells/stage"), std::string::npos);
  EXPECT_NE(s.find("connection 0"), std::string::npos);
}

TEST(MIDigraphTest, EqualityIsStructural) {
  EXPECT_EQ(baseline_network(4), baseline_network(4));
  EXPECT_FALSE(baseline_network(4) ==
               build_network(NetworkKind::kOmega, 4));
}

}  // namespace
}  // namespace mineq::min
