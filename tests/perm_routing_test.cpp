#include "sim/perm_routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "sim/traffic.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::sim {
namespace {

TEST(PermRoutingTest, IdentityIsNeverAdmissible) {
  // Counterintuitive but forced by the Banyan property: terminals 2c and
  // 2c+1 enter the same first-stage cell and, under the identity, exit
  // the same last-stage cell — so both need the unique cell-to-cell path
  // and collide on its first link. Identity is inadmissible on every
  // 2x2-cell Banyan MIN.
  for (int n = 2; n <= 5; ++n) {
    const min::MIDigraph g = min::baseline_network(n);
    const perm::Permutation identity(std::size_t{1} << n);
    EXPECT_FALSE(is_admissible(g, identity)) << "n=" << n;
  }
}

TEST(PermRoutingTest, AllStraightSettingsRealizeAdmissiblePermutation) {
  for (int n = 2; n <= 5; ++n) {
    const min::MIDigraph g = min::baseline_network(n);
    const SwitchSettings straight(
        static_cast<std::size_t>(n),
        std::vector<std::uint8_t>(g.cells_per_stage(), 0));
    const perm::Permutation realized = settings_permutation(g, straight);
    EXPECT_TRUE(is_admissible(g, realized)) << "n=" << n;
    EXPECT_FALSE(realized.is_identity()) << "n=" << n;
  }
}

TEST(PermRoutingTest, SizeValidation) {
  const min::MIDigraph g = min::baseline_network(3);
  EXPECT_THROW((void)is_admissible(g, perm::Permutation(4)),
               std::invalid_argument);
}

TEST(PermRoutingTest, ExhaustiveCountMatchesSwitchCount) {
  // In a Banyan network, admissible permutations and switch settings are
  // in bijection: count = 2^(stages * cells).
  for (int n = 2; n <= 3; ++n) {
    const min::MIDigraph g = min::baseline_network(n);
    EXPECT_EQ(count_admissible_exhaustive(g),
              admissible_count_theoretical(g))
        << "n=" << n;
  }
}

TEST(PermRoutingTest, ExhaustiveCountOmegaMatchesToo) {
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, 3);
  EXPECT_EQ(count_admissible_exhaustive(g), admissible_count_theoretical(g));
}

TEST(PermRoutingTest, ExhaustiveGuard) {
  EXPECT_THROW((void)count_admissible_exhaustive(min::baseline_network(4)),
               std::invalid_argument);
}

TEST(PermRoutingTest, FractionEstimateMatchesTheory) {
  // n=3: 4096 admissible of 40320 ~ 0.1016.
  const min::MIDigraph g = min::baseline_network(3);
  MINEQ_SEEDED_RNG(rng, 167);
  const double fraction = admissible_fraction_estimate(g, 4000, rng);
  EXPECT_NEAR(fraction, 4096.0 / 40320.0, 0.03);
  EXPECT_THROW((void)admissible_fraction_estimate(g, 0, rng),
               std::invalid_argument);
}

TEST(PermRoutingTest, SettingsPermutationBijective) {
  // Distinct settings realize distinct permutations (Banyan property).
  const min::MIDigraph g = min::baseline_network(2);
  // 2 stages x 2 cells = 4 switches: 16 settings.
  std::set<std::vector<std::uint32_t>> images;
  for (unsigned code = 0; code < 16; ++code) {
    SwitchSettings settings(2, std::vector<std::uint8_t>(2, 0));
    for (int s = 0; s < 2; ++s) {
      for (int c = 0; c < 2; ++c) {
        settings[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>((code >> (2 * s + c)) & 1U);
      }
    }
    images.insert(settings_permutation(g, settings).image());
  }
  EXPECT_EQ(images.size(), 16U);
}

TEST(PermRoutingTest, SettingsPermutationValidation) {
  const min::MIDigraph g = min::baseline_network(2);
  EXPECT_THROW((void)settings_permutation(g, SwitchSettings{}),
               std::invalid_argument);
  SwitchSettings wrong(2, std::vector<std::uint8_t>(3, 0));
  EXPECT_THROW((void)settings_permutation(g, wrong), std::invalid_argument);
}

TEST(PermRoutingTest, SettingsRoundTrip) {
  // settings -> permutation -> settings -> same permutation.
  MINEQ_SEEDED_RNG(rng, 173);
  const min::MIDigraph g = min::baseline_network(3);
  for (int trial = 0; trial < 20; ++trial) {
    SwitchSettings settings(3, std::vector<std::uint8_t>(4, 0));
    for (auto& stage : settings) {
      for (auto& s : stage) s = static_cast<std::uint8_t>(rng.below(2));
    }
    const perm::Permutation pi = settings_permutation(g, settings);
    EXPECT_TRUE(is_admissible(g, pi));
    const auto recovered = settings_for_permutation(g, pi);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(settings_permutation(g, *recovered), pi);
  }
}

TEST(PermRoutingTest, SettingsForInadmissibleIsNull) {
  // Find an inadmissible permutation for n=3 (most are) and check both
  // deciders agree.
  const min::MIDigraph g = min::baseline_network(3);
  MINEQ_SEEDED_RNG(rng, 179);
  int checked = 0;
  while (checked < 10) {
    const perm::Permutation pi = perm::Permutation::random(8, rng);
    const bool admissible = is_admissible(g, pi);
    const auto settings = settings_for_permutation(g, pi);
    EXPECT_EQ(admissible, settings.has_value());
    if (!admissible) ++checked;
  }
}

TEST(PermRoutingTest, OmegaWindowCriterionExhaustiveN3) {
  const min::MIDigraph omega = min::build_network(min::NetworkKind::kOmega, 3);
  std::vector<std::uint32_t> image(8);
  std::iota(image.begin(), image.end(), 0U);
  do {
    const perm::Permutation pi(image);
    ASSERT_EQ(is_admissible(omega, pi), omega_window_admissible(pi, 3))
        << pi.str();
  } while (std::next_permutation(image.begin(), image.end()));
}

TEST(PermRoutingTest, OmegaWindowCriterionRandomN4N5) {
  MINEQ_SEEDED_RNG(rng, 181);
  for (int n : {4, 5}) {
    const min::MIDigraph omega =
        min::build_network(min::NetworkKind::kOmega, n);
    for (int trial = 0; trial < 500; ++trial) {
      const perm::Permutation pi =
          perm::Permutation::random(std::size_t{1} << n, rng);
      EXPECT_EQ(is_admissible(omega, pi), omega_window_admissible(pi, n))
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(PermRoutingTest, OmegaWindowValidation) {
  EXPECT_THROW((void)omega_window_admissible(perm::Permutation(8), 1),
               std::invalid_argument);
  EXPECT_THROW((void)omega_window_admissible(perm::Permutation(7), 3),
               std::invalid_argument);
}

TEST(PermRoutingTest, ClassicNetworksDisagreeOnWhichPermutationsPass) {
  // All six admit the same *number* of permutations, but not the same
  // *set*: find a pattern admissible on one and blocked on another.
  const int n = 4;
  const perm::Permutation bitrev =
      pattern_permutation(Pattern::kBitReversal, n);
  int pass = 0;
  int block = 0;
  for (min::NetworkKind kind : min::all_network_kinds()) {
    if (is_admissible(min::build_network(kind, n), bitrev)) {
      ++pass;
    } else {
      ++block;
    }
  }
  // Bit reversal is a classic discriminator; expect a split (the exact
  // split is recorded in EXPERIMENTS.md).
  EXPECT_GT(pass + block, 0);
  EXPECT_EQ(pass + block, 6);
}

}  // namespace
}  // namespace mineq::sim
