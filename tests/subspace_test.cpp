#include "gf2/subspace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::gf2 {
namespace {

TEST(SubspaceTest, ZeroSubspace) {
  Subspace s(4);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_EQ(s.size(), 1U);
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
}

TEST(SubspaceTest, InsertGrowsDimension) {
  Subspace s(4);
  EXPECT_TRUE(s.insert(0b0001));
  EXPECT_TRUE(s.insert(0b0010));
  EXPECT_FALSE(s.insert(0b0011));  // dependent
  EXPECT_FALSE(s.insert(0));
  EXPECT_EQ(s.dim(), 2);
  EXPECT_TRUE(s.contains(0b0011));
  EXPECT_FALSE(s.contains(0b0100));
}

TEST(SubspaceTest, InsertRejectsWideVectors) {
  Subspace s(3);
  EXPECT_THROW((void)s.insert(0b1000), std::invalid_argument);
}

TEST(SubspaceTest, SpanAndFull) {
  const Subspace s = Subspace::span({0b110, 0b011}, 3);
  EXPECT_EQ(s.dim(), 2);
  EXPECT_TRUE(s.contains(0b101));  // 110 ^ 011
  const Subspace full = Subspace::full(3);
  EXPECT_EQ(full.dim(), 3);
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_TRUE(full.contains(v));
  }
}

TEST(SubspaceTest, ReduceIsCanonical) {
  const Subspace s = Subspace::span({0b110, 0b011}, 3);
  // Vectors in the same coset reduce to the same representative.
  for (std::uint64_t v = 0; v < 8; ++v) {
    for (std::uint64_t w = 0; w < 8; ++w) {
      if (s.contains(v ^ w)) {
        EXPECT_EQ(s.reduce(v), s.reduce(w));
      } else {
        EXPECT_NE(s.reduce(v), s.reduce(w));
      }
    }
  }
}

TEST(SubspaceTest, ElementsEnumeration) {
  const Subspace s = Subspace::span({0b01, 0b10}, 2);
  const auto elements = s.elements();
  EXPECT_EQ(elements.size(), 4U);
  EXPECT_TRUE(std::is_sorted(elements.begin(), elements.end()));
  for (std::uint64_t v : elements) {
    EXPECT_TRUE(s.contains(v));
  }
}

TEST(SubspaceTest, ComplementBasisCompletes) {
  MINEQ_SEEDED_RNG(rng, 13);
  for (int trial = 0; trial < 20; ++trial) {
    Subspace s(6);
    for (int i = 0; i < 3; ++i) s.insert(rng.below(64));
    const auto complement = s.complement_basis();
    EXPECT_EQ(static_cast<int>(complement.size()), 6 - s.dim());
    Subspace grown = s;
    for (std::uint64_t v : complement) {
      EXPECT_TRUE(grown.insert(v));
    }
    EXPECT_EQ(grown.dim(), 6);
  }
}

TEST(SubspaceTest, EqualityIsCanonical) {
  // Same subspace from different generating sets.
  const Subspace a = Subspace::span({0b110, 0b011}, 3);
  const Subspace b = Subspace::span({0b101, 0b011}, 3);
  EXPECT_EQ(a, b);
  const Subspace c = Subspace::span({0b100}, 3);
  EXPECT_NE(a, c);
}

TEST(CosetTest, RepresentativeCanonicalized) {
  const Subspace s = Subspace::span({0b011}, 3);
  const Coset c1(0b100, s);
  const Coset c2(0b111, s);  // 100 ^ 011: same coset
  EXPECT_EQ(c1, c2);
  EXPECT_TRUE(c1.contains(0b100));
  EXPECT_TRUE(c1.contains(0b111));
  EXPECT_FALSE(c1.contains(0b000));
}

TEST(CosetTest, ElementsAreTranslatedSubspace) {
  const Subspace s = Subspace::span({0b011}, 3);
  const Coset c(0b100, s);
  const auto elements = c.elements();
  EXPECT_EQ(elements.size(), 2U);
  for (std::uint64_t v : elements) {
    EXPECT_TRUE(c.contains(v));
  }
}

TEST(TranslatedSetTest, DetectsTranslation) {
  const std::vector<std::uint64_t> a = {0b000, 0b011, 0b101, 0b110};
  std::vector<std::uint64_t> b;
  for (std::uint64_t v : a) b.push_back(v ^ 0b010);
  std::uint64_t t = 0;
  EXPECT_TRUE(is_translated_set(a, b, &t));
  // Verify the reported translation actually works.
  for (std::uint64_t v : a) {
    EXPECT_NE(std::find(b.begin(), b.end(), v ^ t), b.end());
  }
}

TEST(TranslatedSetTest, RejectsNonTranslates) {
  const std::vector<std::uint64_t> a = {0, 1, 2, 3};
  const std::vector<std::uint64_t> b = {0, 1, 2, 4};
  EXPECT_FALSE(is_translated_set(a, b));
  const std::vector<std::uint64_t> c = {0, 1};
  EXPECT_FALSE(is_translated_set(a, c));
}

TEST(TranslatedSetTest, EmptyAndSelf) {
  EXPECT_TRUE(is_translated_set({}, {}));
  const std::vector<std::uint64_t> a = {5, 9};
  std::uint64_t t = 1;
  EXPECT_TRUE(is_translated_set(a, a, &t));
  EXPECT_TRUE(t == 0 || t == (5 ^ 9));
}

}  // namespace
}  // namespace mineq::gf2
