/// \file paper_results_test.cpp
/// \brief End-to-end verification of every labelled result in the paper:
/// Proposition 1, Lemma 2, Theorem 3, the Section 4 PIPID analysis and
/// the closing corollary about the six classical networks, plus the
/// Fig. 5 degenerate case and the buddy-insufficiency remark ([10]).

#include <gtest/gtest.h>

#include <algorithm>

#include "gf2/subspace.hpp"
#include "graph/isomorphism.hpp"
#include "min/affine_iso.hpp"
#include "min/banyan.hpp"
#include "min/baseline.hpp"
#include "min/buddy.hpp"
#include "min/equivalence.hpp"
#include "min/independence.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "min/properties.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

// ---------------------------------------------------------------------
// Proposition 1: the reverse of an independent connection is independent.
// ---------------------------------------------------------------------

class Proposition1Test : public ::testing::TestWithParam<int> {};

TEST_P(Proposition1Test, ReverseOfIndependentIsIndependent) {
  const int w = GetParam();
  MINEQ_SEEDED_RNG(rng, 1000 + static_cast<std::uint64_t>(w));
  for (int trial = 0; trial < 25; ++trial) {
    const Connection conn =
        trial % 2 == 0 ? Connection::random_independent_case1(w, rng)
                       : Connection::random_independent_case2(w, rng);
    const Connection rev = conn.reverse_independent();
    EXPECT_TRUE(is_independent(rev));
    EXPECT_TRUE(is_independent_definition(rev));
    // And reversing again gives an independent connection with the
    // original arcs.
    const Connection back = rev.reverse_independent();
    EXPECT_TRUE(is_independent(back));
    for (std::uint32_t x = 0; x < conn.cells(); ++x) {
      std::array<std::uint32_t, 2> a = conn.children(x);
      std::array<std::uint32_t, 2> b = back.children(x);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, Proposition1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Proposition1Test, Case2TranslatedSetStructure) {
  // The proof's key step: F (the (f,f) vertices) and G (the (g,g)
  // vertices) are translated sets of each other, as are A and B upstream.
  MINEQ_SEEDED_RNG(rng, 1100);
  for (int w = 2; w <= 6; ++w) {
    const Connection conn = Connection::random_independent_case2(w, rng);
    const auto types = conn.vertex_types();
    std::vector<std::uint64_t> ff_set;
    std::vector<std::uint64_t> gg_set;
    for (std::uint32_t y = 0; y < conn.cells(); ++y) {
      if (types[y] == VertexType::kFF) ff_set.push_back(y);
      if (types[y] == VertexType::kGG) gg_set.push_back(y);
    }
    ASSERT_EQ(ff_set.size(), conn.cells() / 2);
    std::uint64_t translation = 0;
    EXPECT_TRUE(gf2::is_translated_set(ff_set, gg_set, &translation));
    // The paper: G is the (c_f ^ c_g)-translate of F.
    const auto lf = linear_form(conn);
    ASSERT_TRUE(lf.has_value());
    // Both (c_f ^ c_g) and the found translation must map F onto G.
    const std::uint64_t t = lf->c_f ^ lf->c_g;
    for (std::uint64_t y : ff_set) {
      EXPECT_NE(std::find(gg_set.begin(), gg_set.end(), y ^ t),
                gg_set.end());
    }
  }
}

// ---------------------------------------------------------------------
// Lemma 2: Banyan + independent connections => P(*, n); applying it to
// the reverse digraph (via Proposition 1) gives P(1, *).
// ---------------------------------------------------------------------

class Lemma2Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma2Test, SuffixAndPrefixProperties) {
  const int n = GetParam();
  MINEQ_SEEDED_RNG(rng, 2000 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::random_banyan_independent(n, rng);
    EXPECT_TRUE(satisfies_p_star_n(g));          // Lemma 2 on G
    EXPECT_TRUE(satisfies_p_star_n(g.reverse())); // Lemma 2 on G^{-1}
    EXPECT_TRUE(satisfies_p1_star(g));            // equivalent statement
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, Lemma2Test, ::testing::Values(2, 3, 4, 5, 6));

TEST(Lemma2Test, ComponentStageIntersectionsAreUniform) {
  // The inductive invariant: every component of (G)_{j..n-1} meets every
  // covered stage in exactly cells/2^j nodes.
  MINEQ_SEEDED_RNG(rng, 2100);
  const MIDigraph g = test::random_banyan_independent(6, rng);
  for (int j = 0; j < 6; ++j) {
    const SuffixStructure structure = suffix_component_structure(g, j);
    EXPECT_EQ(structure.component_count, std::size_t{1} << j);
    for (const auto& component : structure.intersections) {
      for (std::size_t count : component) {
        EXPECT_EQ(count, g.cells_per_stage() >> static_cast<unsigned>(j));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Theorem 3: a Banyan MI-digraph built with independent connections is
// isomorphic to the Baseline MI-digraph.
// ---------------------------------------------------------------------

class Theorem3Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem3Test, BanyanIndependentIsBaselineEquivalent) {
  const int n = GetParam();
  MINEQ_SEEDED_RNG(rng, 3000 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::random_banyan_independent(n, rng);
    // The paper's easy check:
    EXPECT_TRUE(is_baseline_equivalent(g));
    // And constructively, with an explicit verified isomorphism:
    const auto iso = synthesize_affine_isomorphism(g, baseline_network(n),
                                                   rng);
    if (iso.has_value()) {
      EXPECT_TRUE(verify_affine_isomorphism(g, baseline_network(n), *iso));
    } else {
      // Outside the straight-pairing affine family (e.g. case-1 stages):
      // fall back to the general search for small n.
      if (n <= 5) {
        const auto mapping =
            find_explicit_isomorphism(g, baseline_network(n), rng);
        ASSERT_TRUE(mapping.has_value());
        EXPECT_TRUE(graph::verify_layered_isomorphism(
            g.to_layered(), baseline_network(n).to_layered(), *mapping));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, Theorem3Test,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

// ---------------------------------------------------------------------
// Section 4: PIPID stages are independent; Banyan PIPID networks are
// baseline-equivalent; the six classical networks are equivalent.
// ---------------------------------------------------------------------

TEST(Section4Test, PipidConnectionsAreIndependent) {
  MINEQ_SEEDED_RNG(rng, 4000);
  for (int n = 2; n <= 9; ++n) {
    for (int trial = 0; trial < 10; ++trial) {
      const perm::IndexPermutation ip =
          perm::IndexPermutation::random(n, rng);
      EXPECT_TRUE(is_independent(connection_from_pipid_formula(ip)))
          << ip.str();
    }
  }
}

TEST(Section4Test, RandomBanyanPipidNetworksEquivalent) {
  MINEQ_SEEDED_RNG(rng, 4100);
  for (int n = 2; n <= 7; ++n) {
    const MIDigraph g = test::random_banyan_pipid(n, rng);
    EXPECT_TRUE(is_baseline_equivalent(g)) << "n=" << n;
  }
}

TEST(Section4Test, SixClassicalNetworksPairwiseEquivalent) {
  // The paper's closing corollary, checked with the easy characterization
  // and with explicit isomorphisms.
  MINEQ_SEEDED_RNG(rng, 4200);
  const int n = 5;
  std::vector<MIDigraph> nets;
  for (NetworkKind kind : all_network_kinds()) {
    nets.push_back(build_network(kind, n));
  }
  for (const MIDigraph& g : nets) {
    EXPECT_TRUE(is_baseline_equivalent(g));
  }
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (std::size_t j = i + 1; j < nets.size(); ++j) {
      EXPECT_TRUE(are_topologically_equivalent(nets[i], nets[j]));
      const auto iso = synthesize_affine_isomorphism(nets[i], nets[j], rng);
      ASSERT_TRUE(iso.has_value()) << i << " vs " << j;
      EXPECT_TRUE(verify_affine_isomorphism(nets[i], nets[j], *iso));
    }
  }
}

TEST(Section4Test, Figure5DegenerateStage) {
  // k = theta^{-1}(0) = 0: two links between the cells, Banyan fails.
  const perm::IndexPermutation degenerate(
      perm::Permutation::from_cycles(4, {{1, 3}}));
  ASSERT_TRUE(pipid_stage_info(degenerate).degenerate);
  const Connection conn = connection_from_pipid_formula(degenerate);
  for (std::uint32_t x = 0; x < conn.cells(); ++x) {
    EXPECT_EQ(conn.f(x), conn.g(x));
  }
  std::vector<perm::IndexPermutation> seq = {perm::perfect_shuffle(4),
                                             degenerate,
                                             perm::perfect_shuffle(4)};
  const MIDigraph g = network_from_pipids(seq);
  EXPECT_TRUE(g.is_valid());
  EXPECT_FALSE(is_banyan(g));
  EXPECT_FALSE(is_baseline_equivalent(g));
}

// ---------------------------------------------------------------------
// The remark via [10]: Agrawal's buddy conditions are not sufficient for
// baseline equivalence.
// ---------------------------------------------------------------------

TEST(BuddyInsufficiencyTest, BanyanBuddyNetworkNotEquivalent) {
  // Search for a network whose stages all satisfy the buddy property and
  // which is Banyan, yet fails P(1,*) — demonstrating that the buddy
  // conditions alone cannot characterize baseline equivalence. The seed
  // is fixed; the search reliably finds such instances at n=4 because
  // random buddy stages rarely align components globally.
  MINEQ_SEEDED_RNG(rng, 4300);
  const int n = 4;
  const int w = n - 1;
  const std::uint32_t cells = std::uint32_t{1} << w;
  bool found = false;
  for (int attempt = 0; attempt < 2000 && !found; ++attempt) {
    // Random buddy stage: pair cells randomly, pair targets randomly,
    // wire each cell-pair onto a target-pair as a K_{2,2}.
    std::vector<Connection> connections;
    for (int s = 0; s < n - 1; ++s) {
      const perm::Permutation sources =
          perm::Permutation::random(cells, rng);
      const perm::Permutation targets =
          perm::Permutation::random(cells, rng);
      std::vector<std::uint32_t> f(cells);
      std::vector<std::uint32_t> g(cells);
      for (std::uint32_t p = 0; p < cells / 2; ++p) {
        const std::uint32_t x0 = sources(2 * p);
        const std::uint32_t x1 = sources(2 * p + 1);
        const std::uint32_t y0 = targets(2 * p);
        const std::uint32_t y1 = targets(2 * p + 1);
        f[x0] = y0;
        g[x0] = y1;
        f[x1] = y0;
        g[x1] = y1;
      }
      connections.emplace_back(std::move(f), std::move(g), w);
    }
    const MIDigraph candidate(n, std::move(connections));
    if (!has_buddy_property(candidate)) continue;  // safety: always true
    if (!is_banyan(candidate)) continue;
    if (!is_baseline_equivalent(candidate)) {
      found = true;
    }
  }
  EXPECT_TRUE(found)
      << "no Banyan buddy non-equivalent network found; counterexample "
         "search needs revisiting";
}

// ---------------------------------------------------------------------
// The Section 2 characterization cross-checked both ways.
// ---------------------------------------------------------------------

TEST(CharacterizationTest, EquivalentNetworksAreIsomorphicToBaseline) {
  MINEQ_SEEDED_RNG(rng, 4400);
  const int n = 4;
  const MIDigraph base = baseline_network(n);
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::scrambled_copy(base, rng);
    ASSERT_TRUE(is_baseline_equivalent(g));
    const auto mapping = graph::find_layered_isomorphism(
        g.to_layered(), base.to_layered());
    ASSERT_TRUE(mapping.has_value());
    EXPECT_TRUE(graph::verify_layered_isomorphism(
        g.to_layered(), base.to_layered(), *mapping));
  }
}

TEST(CharacterizationTest, NonEquivalentNetworksAreNotIsomorphic) {
  MINEQ_SEEDED_RNG(rng, 4500);
  const int n = 4;
  const MIDigraph base = baseline_network(n);
  int non_equivalent_seen = 0;
  while (non_equivalent_seen < 5) {
    const MIDigraph g = random_independent_network(n, rng);
    if (is_baseline_equivalent(g)) continue;
    ++non_equivalent_seen;
    EXPECT_FALSE(graph::find_layered_isomorphism(g.to_layered(),
                                                 base.to_layered())
                     .has_value());
  }
}

}  // namespace
}  // namespace mineq::min
