#include "min/properties.hpp"

#include <gtest/gtest.h>

#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(PropertiesTest, ExpectedComponentsFormula) {
  const MIDigraph g = baseline_network(4);
  // Paper: (G)_{i,j} should have 2^{n-1-(j-i)} components.
  EXPECT_EQ(expected_components(g, 0, 0), 8U);
  EXPECT_EQ(expected_components(g, 0, 1), 4U);
  EXPECT_EQ(expected_components(g, 0, 3), 1U);
  EXPECT_EQ(expected_components(g, 2, 3), 4U);
  EXPECT_THROW((void)expected_components(g, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)expected_components(g, 0, 4), std::invalid_argument);
}

TEST(PropertiesTest, BaselineSatisfiesEverything) {
  for (int n = 1; n <= 8; ++n) {
    const MIDigraph g = baseline_network(n);
    EXPECT_TRUE(satisfies_p1_star(g)) << "n=" << n;
    EXPECT_TRUE(satisfies_p_star_n(g)) << "n=" << n;
    for (int lo = 0; lo < n; ++lo) {
      for (int hi = lo; hi < n; ++hi) {
        EXPECT_TRUE(satisfies_p(g, lo, hi))
            << "n=" << n << " range " << lo << ".." << hi;
      }
    }
  }
}

TEST(PropertiesTest, PrefixProfileMatchesDirectCounts) {
  MINEQ_SEEDED_RNG(rng, 71);
  const MIDigraph g = random_independent_network(6, rng);
  const auto profile = prefix_component_profile(g);
  ASSERT_EQ(profile.size(), 6U);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(profile[static_cast<std::size_t>(j)],
              component_count_range(g, 0, j))
        << "j=" << j;
  }
}

TEST(PropertiesTest, SuffixProfileMatchesDirectCounts) {
  MINEQ_SEEDED_RNG(rng, 73);
  const MIDigraph g = random_independent_network(6, rng);
  const auto profile = suffix_component_profile(g);
  ASSERT_EQ(profile.size(), 6U);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(profile[static_cast<std::size_t>(i)],
              component_count_range(g, i, 5))
        << "i=" << i;
  }
}

TEST(PropertiesTest, SingleStageRangeCountsCells) {
  const MIDigraph g = baseline_network(4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(component_count_range(g, s, s), 8U);
  }
}

TEST(PropertiesTest, IdentityChainsFailPrefixProperty) {
  // All-identity PIPID wiring: stage pairs stay disconnected columns of
  // double links, so (G)_{0..1} has 8 components instead of 4.
  std::vector<perm::IndexPermutation> seq(
      3, perm::IndexPermutation::identity(4));
  const MIDigraph g = network_from_pipids(seq);
  EXPECT_EQ(component_count_range(g, 0, 1), 8U);
  EXPECT_FALSE(satisfies_p(g, 0, 1));
  EXPECT_FALSE(satisfies_p1_star(g));
  EXPECT_FALSE(satisfies_p_star_n(g));
}

TEST(PropertiesTest, ClassicalNetworksSatisfyBothStars) {
  for (int n = 2; n <= 7; ++n) {
    for (NetworkKind kind : all_network_kinds()) {
      const MIDigraph g = build_network(kind, n);
      EXPECT_TRUE(satisfies_p1_star(g)) << network_name(kind) << " n=" << n;
      EXPECT_TRUE(satisfies_p_star_n(g)) << network_name(kind) << " n=" << n;
    }
  }
}

TEST(PropertiesTest, SuffixStructureLemma2Counts) {
  // Lemma 2: on a Banyan independent-connection network, each component
  // of (G)_{j..n-1} meets each covered stage in the same number of cells.
  MINEQ_SEEDED_RNG(rng, 79);
  const MIDigraph g = test::random_banyan_independent(5, rng);
  for (int from = 0; from < 5; ++from) {
    const SuffixStructure s = suffix_component_structure(g, from);
    EXPECT_EQ(s.component_count, std::size_t{1} << from) << "from=" << from;
    const std::size_t per_stage =
        g.cells_per_stage() >> static_cast<unsigned>(from);
    for (const auto& component : s.intersections) {
      for (std::size_t stage_count : component) {
        EXPECT_EQ(stage_count, per_stage);
      }
    }
  }
}

TEST(PropertiesTest, SuffixStructureCountsNodesExactly) {
  MINEQ_SEEDED_RNG(rng, 83);
  const MIDigraph g = random_independent_network(4, rng);
  const SuffixStructure s = suffix_component_structure(g, 1);
  std::size_t total = 0;
  for (const auto& component : s.intersections) {
    for (std::size_t count : component) total += count;
  }
  EXPECT_EQ(total, static_cast<std::size_t>(3) * g.cells_per_stage());
}

}  // namespace
}  // namespace mineq::min
