#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"

namespace mineq::sim {
namespace {

SimConfig quick_config() {
  SimConfig config;
  config.warmup_cycles = 100;
  config.measure_cycles = 1000;
  config.injection_rate = 0.3;
  config.seed = 42;
  return config;
}

TEST(EngineTest, ConstructionDerivesSchedule) {
  EXPECT_NO_THROW(Engine(min::baseline_network(4)));
}

TEST(EngineTest, ConstructionRejectsNonRoutableNetwork) {
  std::vector<perm::IndexPermutation> seq(
      3, perm::IndexPermutation::identity(4));
  EXPECT_THROW((void)Engine(min::network_from_pipids(seq)), std::invalid_argument);
}

TEST(EngineTest, ConstructionRejectsWrongSchedule) {
  const min::MIDigraph g = min::baseline_network(3);
  min::BitSchedule wrong;
  wrong.bit = {0, 0};  // correct schedule is MSB-first
  wrong.invert = {0, 0};
  EXPECT_THROW((void)Engine(g, wrong), std::invalid_argument);
}

TEST(EngineTest, DeterministicGivenSeed) {
  const Engine engine(min::baseline_network(4));
  const SimResult a = engine.run(Pattern::kUniform, quick_config());
  const SimResult b = engine.run(Pattern::kUniform, quick_config());
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

TEST(EngineTest, LowLoadDeliversNearlyEverything) {
  const Engine engine(min::baseline_network(4));
  SimConfig config = quick_config();
  config.injection_rate = 0.05;
  const SimResult result = engine.run(Pattern::kUniform, config);
  EXPECT_GT(result.delivered, 0U);
  // At 5% load nothing should be refused at injection.
  EXPECT_DOUBLE_EQ(result.acceptance, 1.0);
  // Delivered within a small slack of injected (packets in flight at the
  // end of the run, plus warmup boundary effects).
  EXPECT_GE(result.delivered + 200, result.injected);
}

TEST(EngineTest, LatencyAtLeastStageCount) {
  // A packet needs >= stages cycles (one hop per cycle, plus ejection).
  const Engine engine(min::baseline_network(4));
  SimConfig config = quick_config();
  config.injection_rate = 0.02;
  const SimResult result = engine.run(Pattern::kUniform, config);
  ASSERT_GT(result.latency.count(), 0U);
  EXPECT_GE(result.latency.min(), 4.0);
}

TEST(EngineTest, ThroughputBounded) {
  const Engine engine(min::baseline_network(4));
  SimConfig config = quick_config();
  config.injection_rate = 1.0;
  const SimResult result = engine.run(Pattern::kUniform, config);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_LE(result.throughput, 1.0);
  // Uniform traffic at full load saturates below 100% on a Banyan MIN.
  EXPECT_LT(result.throughput, 0.95);
}

TEST(EngineTest, PermutationTrafficAtFullLoadFlows) {
  // Complement traffic is a fixed permutation: once the pipeline fills,
  // packets stream without head-of-line blocking variation per cycle...
  // conflicts depend on the topology; just require substantial throughput.
  const Engine engine(min::baseline_network(4));
  SimConfig config = quick_config();
  config.injection_rate = 1.0;
  const SimResult result = engine.run(Pattern::kComplement, config);
  EXPECT_GT(result.throughput, 0.2);
}

TEST(EngineTest, LatencyHistogramConsistentWithStats) {
  const Engine engine(min::baseline_network(4));
  SimConfig config = quick_config();
  config.injection_rate = 0.4;
  const SimResult result = engine.run(Pattern::kUniform, config);
  EXPECT_EQ(result.latency_histogram.total(), result.latency.count());
  // p99 upper-bounds the mean and lower-bounds the max bucket edge.
  const double p99 = result.latency_histogram.quantile(0.99);
  EXPECT_GE(p99, result.latency.mean());
  EXPECT_GE(result.latency.max() + 1.0, p99);
}

TEST(EngineTest, InvalidRateRejected) {
  const Engine engine(min::baseline_network(3));
  SimConfig config = quick_config();
  config.injection_rate = 1.5;
  EXPECT_THROW((void)engine.run(Pattern::kUniform, config), std::invalid_argument);
}

TEST(EngineTest, IsomorphicNetworksSimilarUniformThroughput) {
  // The six classical networks are isomorphic; under uniform traffic
  // their saturated throughputs should be close (not identical: the
  // label-dependent traffic interacts with different wirings).
  SimConfig config = quick_config();
  config.injection_rate = 1.0;
  double lo = 1.0;
  double hi = 0.0;
  for (min::NetworkKind kind : min::all_network_kinds()) {
    const Engine engine(min::build_network(kind, 4));
    const double throughput =
        engine.run(Pattern::kUniform, config).throughput;
    lo = std::min(lo, throughput);
    hi = std::max(hi, throughput);
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi - lo, 0.25);
}

}  // namespace
}  // namespace mineq::sim
