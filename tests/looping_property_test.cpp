/// \file looping_property_test.cpp
/// \brief Seeded property test of the looping rearrangement algorithm:
/// every sampled random permutation routes through a Benes fabric
/// conflict-free, verified by an *independent* route replay (not the
/// algorithm's own self-check) and cross-checked against the perm::
/// permutation utilities.

#include "multipath/looping.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "multipath/multipath_wiring.hpp"
#include "perm/permutation.hpp"
#include "test_seed.hpp"

namespace mineq::multipath {
namespace {

/// Walk terminal t's route through \p fabric under \p cfg with plain
/// FlatWiring arithmetic — free connections consult the settings, forced
/// ones the destination-digit schedule — so correctness does not rest on
/// looping_configure's internal replay.
struct Replay {
  std::vector<std::pair<int, std::uint32_t>> links;  ///< (stage, x*r+port)
  std::uint32_t arrival = 0;                         ///< terminal reached
};

Replay replay_route(const min::MultiPathWiring& fabric,
                    const LoopingSettings& cfg, std::uint32_t t,
                    std::uint32_t dest) {
  const min::FlatWiring& w = fabric.wiring();
  const auto r = static_cast<std::uint32_t>(fabric.logical_radix());
  const std::uint32_t dest_cell = dest / r;
  Replay out;
  std::uint32_t cell = t / r;
  std::uint32_t slot = t % r;
  for (int s = 0; s + 1 < w.stages(); ++s) {
    const auto si = static_cast<std::size_t>(s);
    std::uint32_t port;
    if (fabric.free_stage()[si] != 0) {
      port = cfg.settings[si][cell * r + slot];
    } else {
      std::uint32_t scale = 1;
      for (int i = 0; i < fabric.schedule().digit[si]; ++i) scale *= r;
      const auto value = static_cast<std::size_t>((dest_cell / scale) % r);
      port = fabric.schedule().port_of_value[si][value];
    }
    out.links.emplace_back(s, cell * r + port);
    const std::uint32_t next = w.child(s, cell, port);
    slot = w.slot(s, cell, port);
    cell = next;
  }
  out.arrival = cell * r + dest % r;  // eject slot is the low digit
  return out;
}

/// The whole property for one (fabric, permutation) pair: configuration
/// succeeds, every free-stage switch setting is a bijection, all N
/// independently replayed routes are pairwise link-disjoint, and each
/// lands exactly on pi(t).
void expect_realizes(const min::MultiPathWiring& fabric,
                     const perm::Permutation& pi) {
  const auto n = static_cast<std::uint64_t>(fabric.logical_terminals());
  ASSERT_EQ(pi.size(), n);
  const LoopingSettings cfg = looping_configure(fabric, pi.image());
  const auto r = static_cast<std::uint32_t>(fabric.logical_radix());

  // Per-switch legality: at every free connection, each cell's slots map
  // to distinct out-ports (an r x r crossbar setting).
  const int free_connections = fabric.logical_stages() - 1;
  ASSERT_GE(cfg.settings.size(), static_cast<std::size_t>(free_connections));
  for (int s = 0; s < free_connections; ++s) {
    const auto& row = cfg.settings[static_cast<std::size_t>(s)];
    ASSERT_EQ(row.size(), n);
    for (std::uint32_t cell = 0; cell < n / r; ++cell) {
      std::set<std::uint8_t> ports;
      for (std::uint32_t slot = 0; slot < r; ++slot) {
        ports.insert(row[cell * r + slot]);
      }
      EXPECT_EQ(ports.size(), r) << "non-bijective switch at stage " << s
                                 << " cell " << cell;
    }
  }

  // Route replay: conflict-free and delivered to pi(t), for every t.
  std::set<std::pair<int, std::uint32_t>> used;
  for (std::uint32_t t = 0; t < n; ++t) {
    const std::uint32_t dest = pi.apply(t);
    const Replay route = replay_route(fabric, cfg, t, dest);
    EXPECT_EQ(route.arrival, dest) << "terminal " << t << " misrouted";
    for (const auto& link : route.links) {
      EXPECT_TRUE(used.insert(link).second)
          << "link conflict at stage " << link.first << " record "
          << link.second << " (terminal " << t << ')';
    }
  }
}

TEST(LoopingPropertyTest, FixedPermutationsBinary) {
  for (int n = 2; n <= 4; ++n) {
    const min::MultiPathWiring fabric = min::MultiPathWiring::benes(n, 2);
    const auto size = static_cast<std::size_t>(fabric.logical_terminals());
    expect_realizes(fabric, perm::Permutation(size));  // identity
    // Full reversal t -> N-1-t: every route crosses the whole fabric.
    std::vector<std::uint32_t> rev(size);
    for (std::size_t t = 0; t < size; ++t) {
      rev[t] = static_cast<std::uint32_t>(size - 1 - t);
    }
    expect_realizes(fabric, perm::Permutation(rev));
  }
}

TEST(LoopingPropertyTest, RandomPermutationsBinary) {
  MINEQ_SEEDED_RNG(rng, 0xB15E5);
  for (int n = 2; n <= 5; ++n) {
    const min::MultiPathWiring fabric = min::MultiPathWiring::benes(n, 2);
    const auto size = static_cast<std::size_t>(fabric.logical_terminals());
    for (int trial = 0; trial < 4; ++trial) {
      expect_realizes(fabric, perm::Permutation::random(size, rng));
    }
  }
}

TEST(LoopingPropertyTest, RandomPermutationsRadix4) {
  MINEQ_SEEDED_RNG(rng, 0xB15E4);
  const min::MultiPathWiring fabric = min::MultiPathWiring::benes(3, 4);
  const auto size = static_cast<std::size_t>(fabric.logical_terminals());
  ASSERT_EQ(size, 64U);
  for (int trial = 0; trial < 3; ++trial) {
    expect_realizes(fabric, perm::Permutation::random(size, rng));
  }
}

TEST(LoopingPropertyTest, InverseAndCompositionCrossCheck) {
  // Cross-check against the perm:: algebra: configuring for pi and for
  // pi^-1 both succeed, and replaying pi's routes then applying pi^-1
  // is the identity on every terminal.
  MINEQ_SEEDED_RNG(rng, 0xC0FFEE);
  const min::MultiPathWiring fabric = min::MultiPathWiring::benes(4, 2);
  const auto size = static_cast<std::size_t>(fabric.logical_terminals());
  const perm::Permutation pi = perm::Permutation::random(size, rng);
  const perm::Permutation inv = pi.inverse();
  ASSERT_TRUE(pi.compose(inv).is_identity());
  expect_realizes(fabric, inv);
  const LoopingSettings cfg = looping_configure(fabric, pi.image());
  for (std::uint32_t t = 0; t < size; ++t) {
    const Replay route = replay_route(fabric, cfg, t, pi.apply(t));
    EXPECT_EQ(inv.apply(route.arrival), t);
  }
}

TEST(LoopingPropertyTest, RejectsNonBenesAndNonBijections) {
  const min::MultiPathWiring benes = min::MultiPathWiring::benes(3, 2);
  const std::vector<std::uint32_t> identity = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW(
      (void)looping_configure(
          min::MultiPathWiring::unipath(min::NetworkKind::kOmega, 3, 2),
          identity),
      std::invalid_argument);
  // Duplicate image and wrong-size vectors are both non-bijections.
  EXPECT_THROW(
      (void)looping_configure(benes, {0, 0, 2, 3, 4, 5, 6, 7}),
      std::invalid_argument);
  EXPECT_THROW((void)looping_configure(benes, {0, 1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mineq::multipath
