#include "graph/isomorphism.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace mineq::graph {
namespace {

LayeredDigraph two_by_two_block() {
  // One K_{2,2}: both layer-0 nodes point at both layer-1 nodes.
  LayeredDigraph g;
  g.adj = {{{0, 1}, {0, 1}}, {{}, {}}};
  return g;
}

LayeredDigraph parallel_pair() {
  // Each layer-0 node double-links its own layer-1 node.
  LayeredDigraph g;
  g.adj = {{{0, 0}, {1, 1}}, {{}, {}}};
  return g;
}

TEST(IsomorphismTest, IdenticalGraphsMatch) {
  const LayeredDigraph g = two_by_two_block();
  const auto mapping = find_layered_isomorphism(g, g);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(verify_layered_isomorphism(g, g, *mapping));
}

TEST(IsomorphismTest, MultiplicityDistinguishes) {
  // K_{2,2} vs parallel double links: same degrees, different multigraphs.
  EXPECT_FALSE(
      find_layered_isomorphism(two_by_two_block(), parallel_pair())
          .has_value());
}

TEST(IsomorphismTest, RelabeledCopiesMatch) {
  LayeredDigraph a;
  a.adj = {{{0, 1}, {2, 3}, {0, 2}, {1, 3}},
           {{0}, {0}, {1}, {1}},
           {{}, {}}};
  // Permute layer-1 nodes: 0<->3, 1<->2; rebuild consistently.
  LayeredDigraph b;
  b.adj = {{{3, 2}, {1, 0}, {3, 1}, {2, 0}},
           {{1}, {1}, {0}, {0}},
           {{}, {}}};
  SearchStats stats;
  const auto mapping = find_layered_isomorphism(a, b, &stats);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(verify_layered_isomorphism(a, b, *mapping));
  EXPECT_GT(stats.nodes_expanded, 0U);
}

TEST(IsomorphismTest, ShapeMismatchFastReject) {
  LayeredDigraph a = two_by_two_block();
  LayeredDigraph b;
  b.adj = {{{0}, {0}}, {{}}};
  EXPECT_FALSE(find_layered_isomorphism(a, b).has_value());
}

TEST(IsomorphismTest, VerifyRejectsWrongMapping) {
  LayeredDigraph a;
  a.adj = {{{0}, {1}}, {{}, {}}};
  LayeredDigraph b;
  b.adj = {{{1}, {0}}, {{}, {}}};
  // Correct: layer0 identity + layer1 swap, or layer0 swap + layer1 id.
  EXPECT_TRUE(verify_layered_isomorphism(a, b, {{0, 1}, {1, 0}}));
  EXPECT_FALSE(verify_layered_isomorphism(a, b, {{0, 1}, {0, 1}}));
  // Non-bijective per layer:
  EXPECT_FALSE(verify_layered_isomorphism(a, b, {{0, 0}, {1, 0}}));
  // Wrong arity:
  EXPECT_FALSE(verify_layered_isomorphism(a, b, {{0, 1}}));
}

TEST(IsomorphismTest, BudgetExhaustionReported) {
  LayeredDigraph a;
  a.adj = {{{0, 1}, {0, 1}, {2, 3}, {2, 3}}, {{}, {}, {}, {}}};
  SearchStats stats;
  const auto mapping = find_layered_isomorphism(a, a, &stats, /*budget=*/1);
  EXPECT_FALSE(mapping.has_value());
  EXPECT_TRUE(stats.budget_exhausted);
}

TEST(IsomorphismTest, AutomorphismCountsSmall) {
  // Single K_{2,2}: swap sources independently of sinks: 2 * 2 = 4.
  EXPECT_EQ(count_layered_automorphisms(two_by_two_block()), 4U);
  // Two parallel double-links: can swap the two chains: 2. Each chain is
  // rigid (single arc pair).
  EXPECT_EQ(count_layered_automorphisms(parallel_pair()), 2U);
}

TEST(IsomorphismTest, AutomorphismCapRespected) {
  EXPECT_EQ(count_layered_automorphisms(two_by_two_block(), 3), 3U);
}

TEST(IsomorphismTest, WlRefineSeparatesObviousNonIso) {
  LayeredDigraph a;
  a.adj = {{{0}, {1}}, {{}, {}}};  // matching
  LayeredDigraph b;
  b.adj = {{{0}, {0}}, {{}, {}}};  // both into node 0
  const WLColoring wl = wl_refine(a, b);
  EXPECT_FALSE(wl.histograms_match);
}

TEST(IsomorphismTest, WlRefineMatchesIsomorphicPair) {
  const WLColoring wl = wl_refine(two_by_two_block(), two_by_two_block());
  EXPECT_TRUE(wl.histograms_match);
  EXPECT_EQ(wl.colors_a.size(), 2U);
}

}  // namespace
}  // namespace mineq::graph
