#include "min/labels.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mineq::min {
namespace {

TEST(LabelsTest, CountsMatchPaperParameters) {
  // n stages, N = 2^n terminals, N/2 cells per stage, (n-1)-bit labels.
  EXPECT_EQ(cell_width(4), 3);
  EXPECT_EQ(cells_per_stage(4), 8U);
  EXPECT_EQ(terminal_count(4), 16U);
  EXPECT_EQ(cell_width(1), 0);
  EXPECT_EQ(cells_per_stage(1), 1U);
  EXPECT_THROW((void)cell_width(0), std::invalid_argument);
  EXPECT_THROW((void)cells_per_stage(27), std::invalid_argument);
}

TEST(LabelsTest, LinkLabelComposition) {
  EXPECT_EQ(link_label(0b101, 0), 0b1010U);
  EXPECT_EQ(link_label(0b101, 1), 0b1011U);
  EXPECT_THROW((void)link_label(0, 2), std::invalid_argument);
  for (std::uint32_t cell = 0; cell < 8; ++cell) {
    for (unsigned port = 0; port < 2; ++port) {
      const std::uint32_t link = link_label(cell, port);
      EXPECT_EQ(link_cell(link), cell);
      EXPECT_EQ(link_port(link), port);
    }
  }
}

TEST(LabelsTest, CellVec) {
  const gf2::BitVec v = cell_vec(5, 4);
  EXPECT_EQ(v.width(), 3);
  EXPECT_EQ(v.bits(), 5U);
}

TEST(LabelsTest, StageLabelStringsMatchFigure2) {
  // Figure 2 labels a 4-stage network's cells (0,0,0) .. (1,1,1).
  const auto labels = stage_label_strings(4);
  ASSERT_EQ(labels.size(), 8U);
  EXPECT_EQ(labels.front(), "(0,0,0)");
  EXPECT_EQ(labels[1], "(0,0,1)");
  EXPECT_EQ(labels.back(), "(1,1,1)");
}

TEST(LabelsTest, LinkLabelStringsMatchFigure4) {
  // Figure 4 labels links with n-bit tuples (0,0,0,0) .. (1,1,1,1).
  const auto labels = link_label_strings(4);
  ASSERT_EQ(labels.size(), 16U);
  EXPECT_EQ(labels.front(), "(0,0,0,0)");
  EXPECT_EQ(labels.back(), "(1,1,1,1)");
}

}  // namespace
}  // namespace mineq::min
