#include "util/format.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mineq::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Header underline present.
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(TablePrinterTest, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW((void)t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW((void)t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TablePrinterTest, RejectsEmptyHeader) {
  EXPECT_THROW((void)TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinterTest, CsvEscapes) {
  TablePrinter t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TablePrinterTest, SetAlignValidation) {
  TablePrinter t({"a", "b"});
  t.set_align(1, Align::kLeft);
  EXPECT_THROW((void)t.set_align(2, Align::kLeft), std::invalid_argument);
}

TEST(FormatTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000000), "1,000,000,000");
}

TEST(FormatTest, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(0.5, 3), "0.500");
}

TEST(FormatTest, BitTuple) {
  EXPECT_EQ(bit_tuple(0b101, 3), "(1,0,1)");
  EXPECT_EQ(bit_tuple(0, 3), "(0,0,0)");
  EXPECT_EQ(bit_tuple(0, 0), "()");
  EXPECT_THROW((void)bit_tuple(1, -1), std::invalid_argument);
}

TEST(FormatTest, BitString) {
  EXPECT_EQ(bit_string(0b101, 3), "101");
  EXPECT_EQ(bit_string(0b101, 5), "00101");
  EXPECT_EQ(bit_string(0, 0), "");
}

}  // namespace
}  // namespace mineq::util
