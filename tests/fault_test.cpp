/// \file fault_test.cpp
/// \brief The fault-injection subsystem: mask geometry and fault models,
/// degraded-mode routing semantics in both switching disciplines
/// (conservation, drops, reroutes, zero-mask equivalence), survivor-
/// topology classification agreement with explicitly pruned ground
/// truth, and the SimWorkspace arena.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "fault/fault_model.hpp"
#include "graph/dsu.hpp"
#include "min/banyan.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "min/properties.hpp"
#include "sim/fabric.hpp"
#include "sim/wormhole.hpp"
#include "test_seed.hpp"

namespace mineq {
namespace {

using fault::FaultKind;
using fault::FaultMask;
using fault::FaultSpec;
using min::FlatWiring;

FlatWiring omega_wiring(int stages) {
  return FlatWiring::from_digraph(
      min::build_network(min::NetworkKind::kOmega, stages));
}

// ---------------------------------------------------------------------------
// FaultMask
// ---------------------------------------------------------------------------

TEST(FaultMaskTest, GeometryAndIndexing) {
  const FlatWiring w = omega_wiring(4);
  FaultMask mask(w);
  EXPECT_TRUE(mask.matches(w));
  EXPECT_EQ(mask.stages(), 4);
  EXPECT_EQ(mask.links_per_stage(), 16U);
  EXPECT_EQ(mask.total_arcs(), 3U * 16U);
  EXPECT_TRUE(mask.none());
  EXPECT_EQ(mask.surviving_arcs(), mask.total_arcs());

  mask.set(1, 3, 1);
  EXPECT_FALSE(mask.none());
  EXPECT_EQ(mask.faulted_count(), 1U);
  EXPECT_TRUE(mask.faulted(1, 3, 1));
  EXPECT_FALSE(mask.faulted(1, 3, 0));
  EXPECT_EQ(mask.arc_index(1, 3, 1), 16U + 7U);
  EXPECT_TRUE(mask.faulted_index(16U + 7U));
  // Setting the same arc twice is idempotent.
  mask.set(1, 3, 1);
  EXPECT_EQ(mask.faulted_count(), 1U);
  EXPECT_EQ(mask.surviving_arcs(), mask.total_arcs() - 1);
}

TEST(FaultMaskTest, FaultedWiringReroutesAndDetectsDeadSwitches) {
  const FlatWiring w = omega_wiring(4);
  FaultMask mask(w);
  mask.set(0, 2, 0);
  const fault::FaultedWiring view(w, mask);
  EXPECT_FALSE(view.arc_ok(0, 2, 0));
  EXPECT_TRUE(view.arc_ok(0, 2, 1));
  // Desired port dead, sibling alive: degraded routing detours.
  EXPECT_EQ(view.usable_port(0, 2, 0), 1);
  EXPECT_EQ(view.usable_port(0, 2, 1), 1);
  EXPECT_FALSE(view.dead_switch(0, 2));
  mask.set(0, 2, 1);
  EXPECT_TRUE(view.dead_switch(0, 2));
  EXPECT_EQ(view.usable_port(0, 2, 0), -1);
  EXPECT_EQ(view.usable_port(0, 2, 1), -1);
}

// ---------------------------------------------------------------------------
// Fault models
// ---------------------------------------------------------------------------

TEST(FaultModelTest, KindNamesRoundTrip) {
  for (const FaultKind kind : fault::all_fault_kinds()) {
    EXPECT_EQ(fault::parse_fault_kind(fault::fault_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)fault::parse_fault_kind("meteor"),
               std::invalid_argument);
}

TEST(FaultModelTest, SpecValidation) {
  EXPECT_NO_THROW(FaultSpec{}.validate());
  EXPECT_NO_THROW((FaultSpec{FaultKind::kRandomLinks, 1.0, 3}).validate());
  EXPECT_THROW((FaultSpec{FaultKind::kRandomLinks, -0.1, 0}).validate(),
               std::invalid_argument);
  EXPECT_THROW((FaultSpec{FaultKind::kRandomLinks, 1.5, 0}).validate(),
               std::invalid_argument);
  // "none" with a nonzero rate is ambiguous and rejected.
  EXPECT_THROW((FaultSpec{FaultKind::kNone, 0.5, 0}).validate(),
               std::invalid_argument);
}

TEST(FaultModelTest, ZeroRateAndNoneAreAllClear) {
  const FlatWiring w = omega_wiring(5);
  EXPECT_TRUE(fault::build_fault_mask(w, FaultSpec{}).none());
  EXPECT_TRUE(
      fault::build_fault_mask(w, FaultSpec{FaultKind::kRandomLinks, 0.0, 9})
          .none());
}

TEST(FaultModelTest, RandomLinksRateOneMasksEverything) {
  const FlatWiring w = omega_wiring(5);
  const FaultMask mask =
      fault::build_fault_mask(w, FaultSpec{FaultKind::kRandomLinks, 1.0, 5});
  EXPECT_EQ(mask.faulted_count(), mask.total_arcs());
}

TEST(FaultModelTest, RandomLinksHitsRoughlyRateAndIsSeedDeterministic) {
  SCOPED_TRACE(test::seed_trace());
  const FlatWiring w = omega_wiring(9);  // 256 cells, 4096 arcs
  const FaultSpec spec{FaultKind::kRandomLinks, 0.1, test::test_seed()};
  const FaultMask a = fault::build_fault_mask(w, spec);
  const FaultMask b = fault::build_fault_mask(w, spec);
  EXPECT_EQ(a, b);
  const double fraction = static_cast<double>(a.faulted_count()) /
                          static_cast<double>(a.total_arcs());
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.16);
  // A different placement seed moves the faults.
  FaultSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(fault::build_fault_mask(w, other), a);
}

TEST(FaultModelTest, SwitchKillsMaskAllArcsOfKilledSwitches) {
  const FlatWiring w = omega_wiring(5);
  // rate 1: every switch killed -> every arc masked.
  const FaultMask all =
      fault::build_fault_mask(w, FaultSpec{FaultKind::kSwitchKills, 1.0, 2});
  EXPECT_EQ(all.faulted_count(), all.total_arcs());
  // A small kill count masks at least one switch's full arc set (an
  // interior switch owns 4 arcs; boundary switches 2).
  const FaultMask few =
      fault::build_fault_mask(w, FaultSpec{FaultKind::kSwitchKills, 0.05, 2});
  EXPECT_GE(few.faulted_count(), 2U);
  EXPECT_LT(few.faulted_count(), few.total_arcs());
}

TEST(FaultModelTest, StageBurstMasksContiguousRunsNearTargetRate) {
  const FlatWiring w = omega_wiring(8);
  const FaultMask mask =
      fault::build_fault_mask(w, FaultSpec{FaultKind::kStageBurst, 0.1, 4});
  const auto target = static_cast<std::size_t>(
      0.1 * static_cast<double>(mask.total_arcs()) + 0.5);
  EXPECT_EQ(mask.faulted_count(), target);
  // Burst faults are stage-correlated: some stage carries well more than
  // the uniform share of the masked arcs.
  std::size_t max_per_stage = 0;
  for (int s = 0; s + 1 < mask.stages(); ++s) {
    std::size_t in_stage = 0;
    for (std::size_t link = 0; link < mask.links_per_stage(); ++link) {
      const std::size_t arc = static_cast<std::size_t>(s) *
                                  mask.links_per_stage() + link;
      if (mask.faulted_index(arc)) ++in_stage;
    }
    max_per_stage = std::max(max_per_stage, in_stage);
  }
  EXPECT_GT(max_per_stage, target / static_cast<std::size_t>(
                                        mask.stages() - 1));
}

// ---------------------------------------------------------------------------
// Degraded-mode routing semantics
// ---------------------------------------------------------------------------

sim::SimConfig fault_sim_config(sim::SwitchingMode mode) {
  sim::SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.7;
  config.packet_length = 3;
  config.lanes = 2;
  config.warmup_cycles = 0;  // exact conservation ledger
  config.measure_cycles = 600;
  config.seed = 77;
  return config;
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.flits_in_flight, b.flits_in_flight);
  EXPECT_EQ(a.hol_blocking_cycles, b.hol_blocking_cycles);
  EXPECT_EQ(a.packets_dropped_faulted, b.packets_dropped_faulted);
  EXPECT_EQ(a.packets_rerouted, b.packets_rerouted);
  EXPECT_EQ(a.packets_misdelivered, b.packets_misdelivered);
  EXPECT_EQ(a.flits_dropped_faulted, b.flits_dropped_faulted);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.link_utilization, b.link_utilization);
  EXPECT_DOUBLE_EQ(a.lane_occupancy.mean(), b.lane_occupancy.mean());
}

TEST(FaultedSimTest, AllClearMaskIsByteIdenticalToPlainRun) {
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 5));
  const FaultMask empty(engine.wiring());
  sim::SimWorkspace workspace;
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward,
        sim::SwitchingMode::kWormhole}) {
    for (const sim::Pattern pattern :
         {sim::Pattern::kUniform, sim::Pattern::kBursty}) {
      const sim::SimConfig config = fault_sim_config(mode);
      const sim::SimResult plain = engine.run(pattern, config);
      const sim::SimResult masked =
          engine.run(pattern, config, &empty, &workspace);
      const sim::SimResult null_mask =
          engine.run(pattern, config, nullptr, &workspace);
      expect_identical(plain, masked);
      expect_identical(plain, null_mask);
      EXPECT_EQ(plain.packets_dropped_faulted, 0U);
      EXPECT_EQ(plain.packets_rerouted, 0U);
    }
  }
}

TEST(FaultedSimTest, ConservationHoldsUnderFaultsInBothDisciplines) {
  SCOPED_TRACE(test::seed_trace());
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kBaseline, 5));
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward,
        sim::SwitchingMode::kWormhole}) {
    for (const FaultKind kind :
         {FaultKind::kRandomLinks, FaultKind::kSwitchKills,
          FaultKind::kStageBurst}) {
      for (const double rate : {0.02, 0.1, 0.3}) {
        const FaultMask mask = fault::build_fault_mask(
            engine.wiring(), FaultSpec{kind, rate, test::test_seed()});
        const sim::SimResult r =
            engine.run(sim::Pattern::kUniform, fault_sim_config(mode),
                       &mask);
        // The flit ledger must close exactly at warmup 0: every flit
        // that entered was delivered, is still buffered, or was dropped
        // at a fault.
        EXPECT_EQ(r.flits_injected, r.flits_delivered + r.flits_in_flight +
                                        r.flits_dropped_faulted)
            << switching_mode_name(mode) << " " << fault_kind_name(kind)
            << " rate " << rate;
        EXPECT_LE(r.delivered, r.injected);
      }
    }
  }
}

TEST(FaultedSimTest, SingleMaskedLinkReroutesInsteadOfDropping) {
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 4));
  FaultMask mask(engine.wiring());
  mask.set(1, 0, 0);  // one interior arc; its sibling survives
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward,
        sim::SwitchingMode::kWormhole}) {
    const sim::SimResult r =
        engine.run(sim::Pattern::kUniform, fault_sim_config(mode), &mask);
    EXPECT_GT(r.packets_rerouted, 0U) << switching_mode_name(mode);
    EXPECT_EQ(r.packets_dropped_faulted, 0U) << switching_mode_name(mode);
    // A banyan has unique paths, so detours end at the wrong terminal:
    // deliveries happen, but some are misses.
    EXPECT_GT(r.packets_misdelivered, 0U) << switching_mode_name(mode);
    EXPECT_LE(r.packets_misdelivered, r.delivered);
    EXPECT_EQ(r.flits_injected,
              r.flits_delivered + r.flits_in_flight +
                  r.flits_dropped_faulted);
  }
}

TEST(FaultedSimTest, DeadSwitchDropsArrivingPackets) {
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 4));
  FaultMask mask(engine.wiring());
  // Kill both out-arcs of first-stage cell 0: everything its terminals
  // inject must be dropped, and nothing else is affected.
  mask.set(0, 0, 0);
  mask.set(0, 0, 1);
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward,
        sim::SwitchingMode::kWormhole}) {
    const sim::SimResult r =
        engine.run(sim::Pattern::kUniform, fault_sim_config(mode), &mask);
    EXPECT_GT(r.packets_dropped_faulted, 0U) << switching_mode_name(mode);
    EXPECT_GT(r.flits_dropped_faulted, 0U);
    EXPECT_EQ(r.flits_injected,
              r.flits_delivered + r.flits_in_flight +
                  r.flits_dropped_faulted);
    // Packets of the 14 unaffected terminals still flow.
    EXPECT_GT(r.delivered, 0U);
  }
}

TEST(FaultedSimTest, HeavyFaultsDegradeDeliveredFraction) {
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 5));
  const FaultMask heavy = fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.3, 11});
  const sim::SimConfig config =
      fault_sim_config(sim::SwitchingMode::kStoreAndForward);
  const sim::SimResult pristine = engine.run(sim::Pattern::kUniform, config);
  const sim::SimResult faulted =
      engine.run(sim::Pattern::kUniform, config, &heavy);
  EXPECT_LT(faulted.delivered, pristine.delivered);
  EXPECT_GT(faulted.packets_dropped_faulted + faulted.packets_rerouted, 0U);
}

TEST(FaultedSimTest, MismatchedMaskGeometryIsRejected) {
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 5));
  FaultMask wrong(omega_wiring(4));
  wrong.set(0, 0, 0);
  EXPECT_THROW(
      (void)engine.run(sim::Pattern::kUniform,
                       fault_sim_config(sim::SwitchingMode::kStoreAndForward),
                       &wrong),
      std::invalid_argument);
  EXPECT_THROW(
      (void)engine.run(sim::Pattern::kUniform,
                       fault_sim_config(sim::SwitchingMode::kWormhole),
                       &wrong),
      std::invalid_argument);
}

TEST(FaultedSimTest, WorkspaceReuseIsByteIdentical) {
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kBaseline, 4));
  const FaultMask mask = fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.1, 3});
  sim::SimWorkspace workspace;
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward,
        sim::SwitchingMode::kWormhole}) {
    const sim::SimConfig config = fault_sim_config(mode);
    const sim::SimResult fresh =
        engine.run(sim::Pattern::kUniform, config, &mask);
    // Second and third runs reuse the same (now dirty) workspace pools.
    const sim::SimResult reused1 =
        engine.run(sim::Pattern::kUniform, config, &mask, &workspace);
    const sim::SimResult reused2 =
        engine.run(sim::Pattern::kUniform, config, &mask, &workspace);
    expect_identical(fresh, reused1);
    expect_identical(fresh, reused2);
  }
}

// ---------------------------------------------------------------------------
// Survivor-topology classification vs explicitly pruned ground truth
// ---------------------------------------------------------------------------

/// Ground-truth path counts over the explicitly rebuilt survivor
/// digraph: adjacency lists with masked arcs removed, plain DP.
std::vector<std::uint64_t> pruned_path_counts(const FlatWiring& w,
                                              const FaultMask& mask,
                                              std::uint32_t source,
                                              std::uint64_t cap) {
  const std::uint32_t cells = w.cells_per_stage();
  std::vector<std::uint64_t> counts(cells, 0);
  counts[source] = 1;
  for (int s = 0; s + 1 < w.stages(); ++s) {
    // Explicit survivor adjacency of this stage.
    std::vector<std::vector<std::uint32_t>> children(cells);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < 2; ++port) {
        if (!mask.faulted(s, x, port)) {
          children[x].push_back(w.child(s, x, port));
        }
      }
    }
    std::vector<std::uint64_t> next(cells, 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      if (counts[x] == 0) continue;
      for (const std::uint32_t child : children[x]) {
        next[child] = std::min(cap, next[child] + counts[x]);
      }
    }
    counts.swap(next);
  }
  return counts;
}

TEST(ClassifyFaultedTest, EmptyMaskMatchesPristineChecks) {
  for (const min::NetworkKind kind : min::all_network_kinds()) {
    const FlatWiring w =
        FlatWiring::from_digraph(min::build_network(kind, 5));
    const FaultMask empty(w);
    const min::FaultedClassification c = min::classify_faulted(w, empty);
    EXPECT_EQ(c.total_arcs, empty.total_arcs());
    EXPECT_EQ(c.surviving_arcs, empty.total_arcs());
    EXPECT_TRUE(c.full_access);
    EXPECT_EQ(c.banyan, min::is_banyan(w));
    EXPECT_EQ(c.baseline_equivalent, min::is_baseline_equivalent(w));
  }
}

TEST(ClassifyFaultedTest, AnySingleFaultBreaksFullAccessOfABanyan) {
  const FlatWiring w = omega_wiring(4);
  for (std::size_t arc = 0; arc < 3U * 16U; arc += 5) {
    FaultMask mask(w);
    mask.set_index(arc);
    const min::FaultedClassification c = min::classify_faulted(w, mask);
    EXPECT_FALSE(c.full_access) << "arc " << arc;
    EXPECT_FALSE(c.banyan);
    EXPECT_FALSE(c.baseline_equivalent);
    EXPECT_EQ(c.surviving_arcs, c.total_arcs - 1);
  }
}

TEST(ClassifyFaultedTest, AgreesWithExplicitlyPrunedDigraph) {
  MINEQ_SEEDED_RNG(rng, 401);
  for (int round = 0; round < 20; ++round) {
    const min::NetworkKind kind = min::all_network_kinds()[static_cast<
        std::size_t>(rng.below(min::all_network_kinds().size()))];
    const FlatWiring w =
        FlatWiring::from_digraph(min::build_network(kind, 5));
    const FaultKind fkind =
        round % 3 == 0 ? FaultKind::kRandomLinks
        : round % 3 == 1 ? FaultKind::kSwitchKills
                         : FaultKind::kStageBurst;
    const double rate = 0.02 + 0.03 * static_cast<double>(round % 5);
    const FaultMask mask =
        fault::build_fault_mask(w, FaultSpec{fkind, rate, rng.next()});

    // Masked path counts match the DP over the rebuilt survivor graph.
    bool truth_full_access = true;
    bool truth_banyan = true;
    for (std::uint32_t u = 0; u < w.cells_per_stage(); ++u) {
      const auto expected = pruned_path_counts(w, mask, u, 4);
      EXPECT_EQ(min::path_counts_from(w, mask, u, 4), expected);
      for (const std::uint64_t c : expected) {
        if (c == 0) truth_full_access = false;
        if (c != 1) truth_banyan = false;
      }
    }
    const min::FaultedClassification c = min::classify_faulted(w, mask);
    EXPECT_EQ(c.full_access, truth_full_access);
    EXPECT_EQ(c.banyan, truth_banyan);
    EXPECT_EQ(c.surviving_arcs, mask.surviving_arcs());

    // Masked component counts match a DSU over the explicit survivor
    // arc list.
    const std::uint32_t cells = w.cells_per_stage();
    graph::DSU dsu(static_cast<std::size_t>(w.stages()) * cells);
    for (int s = 0; s + 1 < w.stages(); ++s) {
      for (std::uint32_t x = 0; x < cells; ++x) {
        for (unsigned port = 0; port < 2; ++port) {
          if (mask.faulted(s, x, port)) continue;
          dsu.unite(static_cast<std::size_t>(s) * cells + x,
                    static_cast<std::size_t>(s + 1) * cells +
                        w.child(s, x, port));
        }
      }
    }
    EXPECT_EQ(
        min::component_count_range(w, mask, 0, w.stages() - 1),
        dsu.components());
  }
}

TEST(ClassifyFaultedTest, MaskedComponentCountEqualsUnmaskedOnEmptyMask) {
  const FlatWiring w = omega_wiring(5);
  const FaultMask empty(w);
  for (int lo = 0; lo < w.stages(); ++lo) {
    for (int hi = lo; hi < w.stages(); ++hi) {
      EXPECT_EQ(min::component_count_range(w, empty, lo, hi),
                min::component_count_range(w, lo, hi));
    }
  }
}

// ---------------------------------------------------------------------------
// Configurable burst parameters (SimConfig satellite)
// ---------------------------------------------------------------------------

TEST(BurstParamsTest, ValidationRejectsOutOfRangeProbabilities) {
  EXPECT_NO_THROW(sim::BurstParams{}.validate());
  EXPECT_NO_THROW((sim::BurstParams{1.0, 1.0}).validate());
  EXPECT_THROW((sim::BurstParams{0.0, 0.5}).validate(),
               std::invalid_argument);
  EXPECT_THROW((sim::BurstParams{0.5, -0.1}).validate(),
               std::invalid_argument);
  EXPECT_THROW((sim::BurstParams{1.5, 0.5}).validate(),
               std::invalid_argument);
  sim::SimConfig config;
  config.burst.off_to_on = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(BurstParamsTest, DutyCycleFollowsConfiguredProbabilities) {
  SCOPED_TRACE(test::seed_trace());
  // Duty p_on = off_on / (on_off + off_on): 1/2 here vs the default 1/4.
  sim::BurstModulator fast(256, test::seeded_rng(77),
                           sim::BurstParams{0.25, 0.25});
  std::uint64_t on = 0;
  const int cycles = 2000;
  for (int c = 0; c < cycles; ++c) {
    fast.advance();
    for (std::size_t t = 0; t < 256; ++t) {
      if (fast.on(t)) ++on;
    }
  }
  const double duty =
      static_cast<double>(on) / (256.0 * static_cast<double>(cycles));
  EXPECT_GT(duty, 0.44);
  EXPECT_LT(duty, 0.56);
}

TEST(BurstParamsTest, HigherDutyRaisesOfferedLoad) {
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 4));
  sim::SimConfig config =
      fault_sim_config(sim::SwitchingMode::kStoreAndForward);
  const sim::SimResult low = engine.run(sim::Pattern::kBursty, config);
  config.burst = sim::BurstParams{1.0 / 24.0, 1.0 / 8.0};  // duty 3/4
  const sim::SimResult high = engine.run(sim::Pattern::kBursty, config);
  EXPECT_GT(high.offered, low.offered * 2);
}

// ---------------------------------------------------------------------------
// Radix-r faults: the surviving-port scan and partial-port switch faults
// ---------------------------------------------------------------------------

TEST(FaultedWiringTest, SurvivingPortScanPicksExactlyTheOldSiblingAtRadix2) {
  // Regression pin for the `port ^ 1` -> "next surviving port" rewrite:
  // at r = 2 the scan must reproduce the historic sibling semantics on
  // every mask state, so the PR 4 goldens carry over unchanged.
  SCOPED_TRACE(test::seed_trace());
  auto rng = test::seeded_rng(83);
  const FlatWiring w = omega_wiring(5);
  FaultMask mask(w);
  for (std::size_t arc = 0; arc < mask.total_arcs(); ++arc) {
    if (rng.chance(1, 3)) mask.set_index(arc);
  }
  const fault::FaultedWiring view(w, mask);
  for (int s = 0; s + 1 < w.stages(); ++s) {
    for (std::uint32_t x = 0; x < w.cells_per_stage(); ++x) {
      for (unsigned desired = 0; desired < 2; ++desired) {
        // The pre-k-ary formula, verbatim.
        int old_semantics = -1;
        if (!mask.faulted(s, x, desired)) {
          old_semantics = static_cast<int>(desired);
        } else if (!mask.faulted(s, x, desired ^ 1U)) {
          old_semantics = static_cast<int>(desired ^ 1U);
        }
        EXPECT_EQ(view.usable_port(s, x, desired), old_semantics)
            << "s=" << s << " x=" << x << " desired=" << desired;
      }
    }
  }
}

TEST(FaultedWiringTest, SurvivingPortScanWalksAllPortsAtRadix4) {
  const FlatWiring w = FlatWiring::from_kary(min::kary_omega(3, 4));
  FaultMask mask(w);
  // Kill ports 1 and 2 of switch (0, 5): desired 1 detours to 3 (the
  // next survivor past dead 2), desired 2 to 3, desired 0 stays.
  mask.set(0, 5, 1);
  mask.set(0, 5, 2);
  const fault::FaultedWiring view(w, mask);
  EXPECT_EQ(view.usable_port(0, 5, 0), 0);
  EXPECT_EQ(view.usable_port(0, 5, 1), 3);
  EXPECT_EQ(view.usable_port(0, 5, 2), 3);
  EXPECT_EQ(view.usable_port(0, 5, 3), 3);
  EXPECT_FALSE(view.dead_switch(0, 5));
  // The scan wraps: with 2 and 3 dead, desired 2 reaches 0.
  FaultMask wrap_mask(w);
  wrap_mask.set(0, 5, 2);
  wrap_mask.set(0, 5, 3);
  const fault::FaultedWiring wrap_view(w, wrap_mask);
  EXPECT_EQ(wrap_view.usable_port(0, 5, 2), 0);
  // All four dead: the switch is dead and no port is usable.
  FaultMask dead_mask(w);
  for (unsigned port = 0; port < 4; ++port) dead_mask.set(0, 5, port);
  const fault::FaultedWiring dead_view(w, dead_mask);
  EXPECT_TRUE(dead_view.dead_switch(0, 5));
  EXPECT_EQ(dead_view.usable_port(0, 5, 0), -1);
}

TEST(FaultMaskTest, MasksOfDifferentRadixDoNotMatch) {
  const FlatWiring binary = omega_wiring(3);
  const FlatWiring kary = FlatWiring::from_kary(min::kary_omega(2, 4));
  // Same stage count; the radix must still separate the geometries.
  ASSERT_EQ(binary.stages(), 3);
  const FaultMask mask(binary);
  EXPECT_TRUE(mask.matches(binary));
  EXPECT_FALSE(mask.matches(FlatWiring::from_kary(min::kary_omega(3, 3))));
  EXPECT_FALSE(FaultMask(kary).matches(binary));
}

TEST(FaultModelTest, PartialPortFaultsNeverKillASwitch) {
  // The defining property of the model: a hit k x k switch loses
  // j < k out-ports, so degraded routing always finds a survivor.
  for (const int radix : {2, 3, 4}) {
    const FlatWiring w =
        radix == 2 ? omega_wiring(5)
                   : FlatWiring::from_kary(min::kary_omega(3, radix));
    const FaultMask mask = fault::build_fault_mask(
        w, FaultSpec{FaultKind::kPartialPort, 0.5, 9});
    EXPECT_GT(mask.faulted_count(), 0U) << "radix=" << radix;
    const fault::FaultedWiring view(w, mask);
    for (int s = 0; s + 1 < w.stages(); ++s) {
      for (std::uint32_t x = 0; x < w.cells_per_stage(); ++x) {
        EXPECT_FALSE(view.dead_switch(s, x)) << "radix=" << radix;
        for (unsigned desired = 0; desired < static_cast<unsigned>(radix);
             ++desired) {
          EXPECT_GE(view.usable_port(s, x, desired), 0) << "radix=" << radix;
        }
      }
    }
  }
}

TEST(FaultModelTest, PartialPortFaultsAreSeedDeterministicAndRateScaled) {
  const FlatWiring w = FlatWiring::from_kary(min::kary_omega(3, 3));
  const FaultSpec spec{FaultKind::kPartialPort, 0.4, 21};
  EXPECT_EQ(fault::build_fault_mask(w, spec),
            fault::build_fault_mask(w, spec));
  FaultSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(fault::build_fault_mask(w, other),
            fault::build_fault_mask(w, spec));
  // Per hit switch at least one and at most radix - 1 arcs are masked.
  const FaultMask mask = fault::build_fault_mask(w, spec);
  std::size_t hit_switches = 0;
  for (int s = 0; s + 1 < w.stages(); ++s) {
    for (std::uint32_t x = 0; x < w.cells_per_stage(); ++x) {
      unsigned masked = 0;
      for (unsigned port = 0; port < 3; ++port) {
        if (mask.faulted(s, x, port)) ++masked;
      }
      EXPECT_LT(masked, 3U);
      if (masked > 0) ++hit_switches;
    }
  }
  // round(0.4 * 18 forwarding switches) = 7.
  EXPECT_EQ(hit_switches, 7U);
}

}  // namespace
}  // namespace mineq
