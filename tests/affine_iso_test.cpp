#include "min/affine_iso.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/isomorphism.hpp"
#include "min/banyan.hpp"
#include "min/baseline.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(AffineIsoTest, IdentityOnSameNetwork) {
  MINEQ_SEEDED_RNG(rng, 1);
  for (int n = 1; n <= 6; ++n) {
    const MIDigraph g = baseline_network(n);
    const auto iso = synthesize_affine_isomorphism(g, g, rng);
    ASSERT_TRUE(iso.has_value()) << "n=" << n;
    EXPECT_TRUE(verify_affine_isomorphism(g, g, *iso));
  }
}

TEST(AffineIsoTest, AllClassicalPairsSynthesize) {
  // The constructive counterpart of the paper's corollary: explicit
  // stage-wise affine isomorphisms between all pairs of the six networks.
  MINEQ_SEEDED_RNG(rng, 3);
  for (int n = 2; n <= 6; ++n) {
    for (NetworkKind a : all_network_kinds()) {
      for (NetworkKind b : all_network_kinds()) {
        const MIDigraph ga = build_network(a, n);
        const MIDigraph gb = build_network(b, n);
        const auto iso = synthesize_affine_isomorphism(ga, gb, rng);
        ASSERT_TRUE(iso.has_value())
            << network_name(a) << " -> " << network_name(b) << " n=" << n;
        EXPECT_TRUE(verify_affine_isomorphism(ga, gb, *iso));
        // The layered mapping agrees with the graph-level verifier too.
        EXPECT_TRUE(graph::verify_layered_isomorphism(
            ga.to_layered(), gb.to_layered(), iso->to_layered_mapping()));
      }
    }
  }
}

TEST(AffineIsoTest, RandomIndependentBanyanPairsMatchedCases) {
  // Theorem 3 made constructive on random instances. The straight-pairing
  // affine family needs the two networks to agree on each stage's case
  // (an f/g-orientation artifact, not a topological restriction), so the
  // pairs are generated with matching case patterns.
  MINEQ_SEEDED_RNG(rng, 5);
  for (int n = 2; n <= 6; ++n) {
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<bool> pattern;
      for (int s = 0; s + 1 < n; ++s) pattern.push_back(rng.chance(1, 2));
      const MIDigraph g =
          test::random_banyan_independent_cases(n, pattern, rng);
      const MIDigraph h =
          test::random_banyan_independent_cases(n, pattern, rng);
      const auto iso = synthesize_affine_isomorphism(g, h, rng);
      ASSERT_TRUE(iso.has_value()) << "n=" << n << " trial=" << trial;
      EXPECT_TRUE(verify_affine_isomorphism(g, h, *iso));
    }
  }
}

TEST(AffineIsoTest, MixedCasePairsHandled) {
  // The h-functional extension lets the affine family cross stage-shape
  // boundaries (case 1 against case 2). Either way, an explicit verified
  // isomorphism must come out of the pipeline (Theorem 3 guarantees one
  // exists).
  MINEQ_SEEDED_RNG(rng, 23);
  const int n = 3;
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::random_banyan_independent_cases(
        n, std::vector<bool>{false, false}, rng);
    const MIDigraph h = test::random_banyan_independent_cases(
        n, std::vector<bool>{true, true}, rng);
    const auto affine = synthesize_affine_isomorphism(g, h, rng);
    if (affine.has_value()) {
      EXPECT_TRUE(verify_affine_isomorphism(g, h, *affine));
    }
    const auto mapping = find_explicit_isomorphism(g, h, rng);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_TRUE(graph::verify_layered_isomorphism(g.to_layered(),
                                                  h.to_layered(), *mapping));
  }
}

TEST(AffineIsoTest, RejectsNonIndependentNetworks) {
  MINEQ_SEEDED_RNG(rng, 7);
  const MIDigraph g = test::scrambled_copy(baseline_network(4), rng);
  const MIDigraph h = baseline_network(4);
  // Scrambled stages are generically not independent: the affine family
  // does not apply (find_explicit_isomorphism falls back instead).
  const auto iso = synthesize_affine_isomorphism(g, h, rng);
  EXPECT_FALSE(iso.has_value());
}

TEST(AffineIsoTest, Case1BanyanAgainstBaseline) {
  // A Banyan network whose stages are all case 1 (pairs of bijections) is
  // baseline-equivalent by Theorem 3 even though Baseline's stages are
  // all case 2. The h-extended affine family can cross that shape
  // boundary; whether or not it does on a given instance, the pipeline
  // must deliver a verified explicit isomorphism.
  MINEQ_SEEDED_RNG(rng, 9);
  const int n = 3;
  const MIDigraph g = test::random_banyan_independent_cases(
      n, std::vector<bool>{false, false}, rng);
  const MIDigraph h = baseline_network(n);
  EXPECT_TRUE(is_baseline_equivalent(g));
  const auto affine = synthesize_affine_isomorphism(g, h, rng);
  if (affine.has_value()) {
    EXPECT_TRUE(verify_affine_isomorphism(g, h, *affine));
  }
  const auto mapping = find_explicit_isomorphism(g, h, rng);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(graph::verify_layered_isomorphism(g.to_layered(),
                                                h.to_layered(), *mapping));
}

TEST(AffineIsoTest, VerifyRejectsWrongMaps) {
  MINEQ_SEEDED_RNG(rng, 11);
  const MIDigraph g = baseline_network(3);
  auto iso = synthesize_affine_isomorphism(g, g, rng);
  ASSERT_TRUE(iso.has_value());
  // Corrupt one stage map with a translation that breaks adjacency.
  AffineIso bad = *iso;
  bad.stage_maps[1] =
      gf2::AffineMap::translation(1, g.width()).after(bad.stage_maps[1]);
  EXPECT_FALSE(verify_affine_isomorphism(g, g, bad));
  // Wrong arity rejected.
  AffineIso short_iso = *iso;
  short_iso.stage_maps.pop_back();
  EXPECT_FALSE(verify_affine_isomorphism(g, g, short_iso));
}

TEST(AffineIsoTest, FindExplicitFallsBackToSearch) {
  // Scrambled baseline vs baseline: affine synthesis fails, the general
  // search still produces a verified mapping.
  MINEQ_SEEDED_RNG(rng, 13);
  const MIDigraph g = test::scrambled_copy(baseline_network(4), rng);
  const MIDigraph h = baseline_network(4);
  const auto mapping = find_explicit_isomorphism(g, h, rng);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(graph::verify_layered_isomorphism(g.to_layered(),
                                                h.to_layered(), *mapping));
}

TEST(AffineIsoTest, SingleStageNetworks) {
  MINEQ_SEEDED_RNG(rng, 17);
  const MIDigraph g(1, {});
  const auto iso = synthesize_affine_isomorphism(g, g, rng);
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ(iso->stage_maps.size(), 1U);
}

TEST(AffineIsoTest, MappingTablesAreBijective) {
  MINEQ_SEEDED_RNG(rng, 19);
  const MIDigraph a = build_network(NetworkKind::kOmega, 5);
  const MIDigraph b = build_network(NetworkKind::kIndirectBinaryCube, 5);
  const auto iso = synthesize_affine_isomorphism(a, b, rng);
  ASSERT_TRUE(iso.has_value());
  for (const auto& layer : iso->to_layered_mapping()) {
    std::vector<bool> hit(layer.size(), false);
    for (std::uint32_t image : layer) {
      ASSERT_LT(image, layer.size());
      EXPECT_FALSE(hit[image]);
      hit[image] = true;
    }
  }
}

}  // namespace
}  // namespace mineq::min
