#include "util/bitops.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mineq::util {
namespace {

TEST(BitopsTest, LowMask) {
  EXPECT_EQ(low_mask(0), 0U);
  EXPECT_EQ(low_mask(1), 1U);
  EXPECT_EQ(low_mask(4), 0xFU);
  EXPECT_EQ(low_mask(kMaxBits), (std::uint64_t{1} << kMaxBits) - 1);
  EXPECT_THROW((void)low_mask(-1), std::invalid_argument);
  EXPECT_THROW((void)low_mask(kMaxBits + 1), std::invalid_argument);
}

TEST(BitopsTest, GetSetFlipBit) {
  EXPECT_EQ(get_bit(0b1010, 1), 1U);
  EXPECT_EQ(get_bit(0b1010, 0), 0U);
  EXPECT_EQ(set_bit(0b1010, 0, 1), 0b1011U);
  EXPECT_EQ(set_bit(0b1010, 1, 0), 0b1000U);
  EXPECT_EQ(set_bit(0b1010, 1, 1), 0b1010U);
  EXPECT_EQ(flip_bit(0b1010, 3), 0b0010U);
  EXPECT_EQ(flip_bit(0b1010, 0), 0b1011U);
}

TEST(BitopsTest, PopcountParity) {
  EXPECT_EQ(popcount(0), 0);
  EXPECT_EQ(popcount(0b1011), 3);
  EXPECT_EQ(parity(0b1011), 1U);
  EXPECT_EQ(parity(0b1001), 0U);
}

TEST(BitopsTest, BitScans) {
  EXPECT_EQ(lowest_set_bit(0b1000), 3);
  EXPECT_EQ(lowest_set_bit(0b1010), 1);
  EXPECT_EQ(highest_set_bit(0b1010), 3);
  EXPECT_EQ(highest_set_bit(1), 0);
}

TEST(BitopsTest, Pow2AndLog) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(64), 6);
  EXPECT_EQ(ilog2(65), 6);
}

TEST(BitopsTest, Rotations) {
  // rotl1 is the perfect shuffle of the digit string.
  EXPECT_EQ(rotl1(0b100, 3), 0b001U);
  EXPECT_EQ(rotl1(0b011, 3), 0b110U);
  EXPECT_EQ(rotr1(0b001, 3), 0b100U);
  EXPECT_EQ(rotr1(0b110, 3), 0b011U);
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(rotr1(rotl1(v, 5), 5), v);
  }
}

TEST(BitopsTest, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b100, 3), 0b001U);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011U);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101U);
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(reverse_bits(reverse_bits(v, 6), 6), v);
  }
}

}  // namespace
}  // namespace mineq::util
