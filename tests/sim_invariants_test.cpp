/// \file sim_invariants_test.cpp
/// \brief Cross-cutting invariants of the packet engine: conservation,
/// capacity effects, latency bounds and load monotonicity.

#include <gtest/gtest.h>

#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "sim/engine.hpp"

namespace mineq::sim {
namespace {

SimConfig base_config() {
  SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 2000;
  config.seed = 77;
  return config;
}

TEST(SimInvariantsTest, DeliveredNeverExceedsInjected) {
  const Engine engine(min::baseline_network(4));
  for (double rate : {0.1, 0.5, 1.0}) {
    SimConfig config = base_config();
    config.injection_rate = rate;
    const SimResult result = engine.run(Pattern::kUniform, config);
    // Delivery counts only measured-window injections, so it cannot
    // exceed what was injected during measurement.
    EXPECT_LE(result.delivered, result.injected) << "rate=" << rate;
    EXPECT_LE(result.injected, result.offered) << "rate=" << rate;
  }
}

TEST(SimInvariantsTest, ThroughputMonotoneInOfferedLoadUntilSaturation) {
  const Engine engine(min::baseline_network(4));
  double previous = 0.0;
  for (double rate : {0.1, 0.2, 0.4}) {
    SimConfig config = base_config();
    config.injection_rate = rate;
    const double throughput =
        engine.run(Pattern::kUniform, config).throughput;
    EXPECT_GT(throughput, previous) << "rate=" << rate;
    previous = throughput;
  }
}

TEST(SimInvariantsTest, LargerQueuesNeverHurtAcceptance) {
  const Engine engine(min::baseline_network(4));
  SimConfig small = base_config();
  small.injection_rate = 1.0;
  small.queue_capacity = 1;
  SimConfig large = small;
  large.queue_capacity = 16;
  const SimResult with_small = engine.run(Pattern::kUniform, small);
  const SimResult with_large = engine.run(Pattern::kUniform, large);
  EXPECT_GE(with_large.acceptance + 0.02, with_small.acceptance);
}

TEST(SimInvariantsTest, LatencyRisesWithLoad) {
  const Engine engine(min::baseline_network(5));
  SimConfig light = base_config();
  light.injection_rate = 0.05;
  SimConfig heavy = base_config();
  heavy.injection_rate = 0.9;
  const double light_latency =
      engine.run(Pattern::kUniform, light).latency.mean();
  const double heavy_latency =
      engine.run(Pattern::kUniform, heavy).latency.mean();
  EXPECT_GT(heavy_latency, light_latency);
  // Minimum possible latency: one hop per stage plus ejection.
  EXPECT_GE(light_latency, 5.0);
}

TEST(SimInvariantsTest, DifferentSeedsGiveDifferentButCloseResults) {
  const Engine engine(min::baseline_network(4));
  SimConfig a = base_config();
  a.injection_rate = 0.5;
  SimConfig b = a;
  b.seed = a.seed + 1;
  const SimResult ra = engine.run(Pattern::kUniform, a);
  const SimResult rb = engine.run(Pattern::kUniform, b);
  EXPECT_NE(ra.injected, rb.injected);  // different randomness
  EXPECT_NEAR(ra.throughput, rb.throughput, 0.05);  // same physics
}

TEST(SimInvariantsTest, DeterministicPatternNoRandomDrift) {
  // Complement traffic is deterministic; two runs with different seeds
  // differ only in injection timing.
  const Engine engine(min::baseline_network(4));
  SimConfig config = base_config();
  config.injection_rate = 1.0;
  const SimResult r = engine.run(Pattern::kComplement, config);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(SimInvariantsTest, IsomorphicNetworksSameUniformSaturationBand) {
  // All six classical networks saturate in the same band under uniform
  // traffic (label-symmetric workload on isomorphic topologies).
  SimConfig config = base_config();
  config.injection_rate = 1.0;
  config.measure_cycles = 1000;
  double lo = 1.0;
  double hi = 0.0;
  for (min::NetworkKind kind : min::all_network_kinds()) {
    const Engine engine(min::build_network(kind, 5));
    const double throughput =
        engine.run(Pattern::kUniform, config).throughput;
    lo = std::min(lo, throughput);
    hi = std::max(hi, throughput);
  }
  EXPECT_GT(lo, 0.3);
  EXPECT_LT(hi - lo, 0.15);
}

TEST(SimInvariantsTest, SaturationDecreasesWithStageCount) {
  // The classic delta-network curve: more stages => lower uniform
  // saturation throughput.
  SimConfig config = base_config();
  config.injection_rate = 1.0;
  config.measure_cycles = 1500;
  double previous = 1.0;
  for (int n : {3, 5, 7}) {
    const Engine engine(min::baseline_network(n));
    const double throughput =
        engine.run(Pattern::kUniform, config).throughput;
    EXPECT_LT(throughput, previous + 0.02) << "n=" << n;
    previous = throughput;
  }
}

}  // namespace
}  // namespace mineq::sim
