#include "test_support.hpp"

#include <gtest/gtest.h>

#include "graph/isomorphism.hpp"
#include "min/banyan.hpp"
#include "min/baseline.hpp"
#include "min/mi_digraph.hpp"
#include "test_seed.hpp"

namespace mineq::test {
namespace {

TEST(TestSupportTest, ScrambledCopyOfBaselinePreservesIsomorphism) {
  MINEQ_SEEDED_RNG(rng, 9001);
  for (int stages = 2; stages <= 5; ++stages) {
    const min::MIDigraph g = min::baseline_network(stages);
    const min::MIDigraph twin = scrambled_copy(g, rng);
    EXPECT_EQ(twin.stages(), g.stages());
    EXPECT_TRUE(twin.is_valid());
    const auto mapping =
        graph::find_layered_isomorphism(g.to_layered(), twin.to_layered());
    ASSERT_TRUE(mapping.has_value()) << "stages=" << stages;
    EXPECT_TRUE(graph::verify_layered_isomorphism(g.to_layered(),
                                                  twin.to_layered(), *mapping));
  }
}

TEST(TestSupportTest, ScrambledCopyOfRandomNetworkPreservesIsomorphism) {
  MINEQ_SEEDED_RNG(rng, 9002);
  const min::MIDigraph g = random_banyan_independent(4, rng);
  const min::MIDigraph twin = scrambled_copy(g, rng);
  const auto mapping =
      graph::find_layered_isomorphism(g.to_layered(), twin.to_layered());
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(graph::verify_layered_isomorphism(g.to_layered(),
                                                twin.to_layered(), *mapping));
}

TEST(TestSupportTest, RandomBanyanIndependentTerminatesAndIsBanyan) {
  MINEQ_SEEDED_RNG(rng, 9003);
  for (int stages = 2; stages <= 6; ++stages) {
    const min::MIDigraph g = random_banyan_independent(stages, rng);
    EXPECT_EQ(g.stages(), stages);
    EXPECT_TRUE(g.is_valid()) << "stages=" << stages;
    EXPECT_TRUE(min::is_banyan(g)) << "stages=" << stages;
  }
}

TEST(TestSupportTest, RandomBanyanPipidTerminatesAndIsBanyan) {
  MINEQ_SEEDED_RNG(rng, 9004);
  for (int stages = 2; stages <= 6; ++stages) {
    const min::MIDigraph g = random_banyan_pipid(stages, rng);
    EXPECT_EQ(g.stages(), stages);
    EXPECT_TRUE(g.is_valid()) << "stages=" << stages;
    EXPECT_TRUE(min::is_banyan(g)) << "stages=" << stages;
  }
}

TEST(TestSupportTest, SeededRngIsDeterministicPerStream) {
  MINEQ_SEEDED_RNG(a, 9005);
  MINEQ_SEEDED_RNG(b, 9005);
  const min::MIDigraph ga = random_banyan_independent(5, a);
  const min::MIDigraph gb = random_banyan_independent(5, b);
  EXPECT_EQ(ga, gb);
  // A different stream diverges immediately (compare fresh generators).
  MINEQ_SEEDED_RNG(a2, 9005);
  MINEQ_SEEDED_RNG(c, 9006);
  EXPECT_NE(a2.next(), c.next());
}

}  // namespace
}  // namespace mineq::test
