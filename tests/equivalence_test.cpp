#include "min/equivalence.hpp"

#include <gtest/gtest.h>

#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(EquivalenceTest, BaselinePassesItsOwnCharacterization) {
  for (int n = 1; n <= 8; ++n) {
    const EquivalenceReport report =
        check_baseline_equivalence(baseline_network(n));
    EXPECT_TRUE(report.valid_degrees);
    EXPECT_TRUE(report.banyan);
    EXPECT_TRUE(report.p1_star);
    EXPECT_TRUE(report.p_star_n);
    EXPECT_TRUE(report.equivalent);
    EXPECT_EQ(report.failure, "");
  }
}

TEST(EquivalenceTest, AllClassicalNetworksEquivalent) {
  // The paper's corollary: the six classical networks are all baseline-
  // equivalent at every size.
  for (int n = 2; n <= 8; ++n) {
    for (NetworkKind kind : all_network_kinds()) {
      EXPECT_TRUE(is_baseline_equivalent(build_network(kind, n)))
          << network_name(kind) << " n=" << n;
    }
  }
}

TEST(EquivalenceTest, InvalidDegreesReported) {
  // A stage where some cell has in-degree 3.
  std::vector<Connection> connections;
  connections.emplace_back(std::vector<std::uint32_t>{0, 0},
                           std::vector<std::uint32_t>{0, 1}, 1);
  const MIDigraph g(2, std::move(connections));
  const EquivalenceReport report = check_baseline_equivalence(g);
  EXPECT_FALSE(report.valid_degrees);
  EXPECT_EQ(report.failure, "degrees");
  EXPECT_FALSE(report.equivalent);
}

TEST(EquivalenceTest, NonBanyanReported) {
  // Degenerate double-link stage (Fig. 5).
  std::vector<perm::IndexPermutation> seq = {
      perm::IndexPermutation::identity(3), perm::perfect_shuffle(3)};
  const MIDigraph g = network_from_pipids(seq);
  const EquivalenceReport report = check_baseline_equivalence(g);
  EXPECT_TRUE(report.valid_degrees);
  EXPECT_FALSE(report.banyan);
  EXPECT_EQ(report.failure, "banyan");
}

TEST(EquivalenceTest, ScrambledBaselineStillEquivalent) {
  // Per-stage relabelling destroys the linear structure but not the
  // topology; the characterization sees through it.
  MINEQ_SEEDED_RNG(rng, 127);
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::scrambled_copy(baseline_network(5), rng);
    EXPECT_TRUE(is_baseline_equivalent(g));
  }
}

TEST(EquivalenceTest, IndependenceFastPathAgrees) {
  MINEQ_SEEDED_RNG(rng, 131);
  // Sound on independent-connection networks:
  for (int trial = 0; trial < 10; ++trial) {
    const MIDigraph g = random_independent_network(5, rng);
    if (is_baseline_equivalent_via_independence(g)) {
      EXPECT_TRUE(is_baseline_equivalent(g));
    }
  }
  // Not complete: a scrambled baseline is equivalent but its stages are
  // (generically) not independent.
  const MIDigraph scrambled = test::scrambled_copy(baseline_network(5), rng);
  EXPECT_TRUE(is_baseline_equivalent(scrambled));
  // (No assertion on the fast path here — it may legitimately return
  // false.)
}

TEST(EquivalenceTest, TopologicalEquivalenceViaCharacterization) {
  const MIDigraph omega = build_network(NetworkKind::kOmega, 5);
  const MIDigraph flip = build_network(NetworkKind::kFlip, 5);
  EXPECT_TRUE(are_topologically_equivalent(omega, flip));
}

TEST(EquivalenceTest, EquivalentVsNonEquivalentMixed) {
  const MIDigraph omega = build_network(NetworkKind::kOmega, 4);
  std::vector<perm::IndexPermutation> seq(
      3, perm::IndexPermutation::identity(4));
  const MIDigraph identity_net = network_from_pipids(seq);
  EXPECT_FALSE(are_topologically_equivalent(omega, identity_net));
}

TEST(EquivalenceTest, NonEquivalentPairFallsBackToSearch) {
  // Two scrambled copies of the same non-Banyan network: neither is
  // baseline-equivalent, but they are isomorphic to each other.
  MINEQ_SEEDED_RNG(rng, 137);
  std::vector<perm::IndexPermutation> seq(
      2, perm::IndexPermutation::identity(3));
  const MIDigraph g = network_from_pipids(seq);
  const MIDigraph h = test::scrambled_copy(g, rng);
  EXPECT_FALSE(is_baseline_equivalent(g));
  EXPECT_TRUE(are_topologically_equivalent(g, h));
  // And a genuinely different non-equivalent pair:
  std::vector<perm::IndexPermutation> seq2 = {
      perm::IndexPermutation::identity(3), perm::perfect_shuffle(3)};
  const MIDigraph k = network_from_pipids(seq2);
  EXPECT_FALSE(are_topologically_equivalent(g, k));
}

TEST(EquivalenceTest, DifferentStageCountsNeverEquivalent) {
  EXPECT_FALSE(are_topologically_equivalent(baseline_network(3),
                                            baseline_network(4)));
}

TEST(EquivalenceTest, ReversalPreservesEquivalence) {
  // Baseline-equivalence is closed under digraph reversal (the reverse of
  // Baseline is Reverse Baseline, which is in the class) — a network-level
  // echo of Proposition 1.
  MINEQ_SEEDED_RNG(rng, 141);
  for (NetworkKind kind : all_network_kinds()) {
    const MIDigraph g = build_network(kind, 5);
    EXPECT_TRUE(is_baseline_equivalent(g.reverse())) << network_name(kind);
  }
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::random_banyan_pipid(4, rng);
    EXPECT_EQ(is_baseline_equivalent(g), is_baseline_equivalent(g.reverse()));
  }
  // And non-equivalent networks stay non-equivalent under reversal.
  std::vector<perm::IndexPermutation> seq(
      3, perm::IndexPermutation::identity(4));
  const MIDigraph chains = network_from_pipids(seq);
  EXPECT_FALSE(is_baseline_equivalent(chains.reverse()));
}

TEST(EquivalenceTest, RandomPipidBanyanNetworksAreEquivalent) {
  // Theorem 3 via Section 4, on random instances.
  MINEQ_SEEDED_RNG(rng, 139);
  for (int n = 2; n <= 6; ++n) {
    for (int trial = 0; trial < 5; ++trial) {
      const MIDigraph g = test::random_banyan_pipid(n, rng);
      EXPECT_TRUE(is_baseline_equivalent(g)) << "n=" << n;
      EXPECT_TRUE(is_baseline_equivalent_via_independence(g));
    }
  }
}

}  // namespace
}  // namespace mineq::min
