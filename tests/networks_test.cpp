#include "min/networks.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "min/banyan.hpp"
#include "min/baseline.hpp"
#include "min/equivalence.hpp"
#include "min/independence.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

class AllNetworksTest : public ::testing::TestWithParam<NetworkKind> {};

TEST_P(AllNetworksTest, ValidBanyanIndependentStages) {
  for (int n = 2; n <= 8; ++n) {
    const MIDigraph g = build_network(GetParam(), n);
    EXPECT_TRUE(g.is_valid()) << "n=" << n;
    EXPECT_TRUE(is_banyan(g)) << "n=" << n;
    for (const Connection& conn : g.connections()) {
      EXPECT_TRUE(is_independent(conn)) << network_name(GetParam());
      EXPECT_EQ(classify_stage(conn), StageCase::kCase2);
    }
  }
}

TEST_P(AllNetworksTest, PipidSequenceIsNonDegenerate) {
  for (int n = 2; n <= 8; ++n) {
    for (const auto& ip : network_pipid_sequence(GetParam(), n)) {
      EXPECT_FALSE(pipid_stage_info(ip).degenerate)
          << network_name(GetParam()) << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classical, AllNetworksTest, ::testing::ValuesIn(all_network_kinds()),
    [](const ::testing::TestParamInfo<NetworkKind>& param_info) {
      return network_name(param_info.param);
    });

TEST(NetworksTest, NamesAreDistinct) {
  const auto& kinds = all_network_kinds();
  EXPECT_EQ(kinds.size(), 6U);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_NE(network_name(kinds[i]), network_name(kinds[j]));
    }
  }
}

TEST(NetworksTest, TokensRoundTripThroughParse) {
  for (const NetworkKind kind : all_network_kinds()) {
    EXPECT_EQ(parse_network_kind(network_token(kind)), kind);
    EXPECT_EQ(parse_network_kind(network_name(kind)), kind);
  }
  EXPECT_THROW((void)parse_network_kind("banyan"), std::invalid_argument);
}

TEST(NetworksTest, OmegaUsesShuffles) {
  const auto seq = network_pipid_sequence(NetworkKind::kOmega, 5);
  ASSERT_EQ(seq.size(), 4U);
  for (const auto& ip : seq) {
    EXPECT_EQ(perm::describe(ip), "sigma");
  }
}

TEST(NetworksTest, FlipIsReversedOmegaStructure) {
  // Flip = inverse shuffles; reversing the Omega digraph must produce a
  // digraph isomorphic to Flip (they are all equivalent anyway, but the
  // reverse relation is structural).
  const MIDigraph omega = build_network(NetworkKind::kOmega, 5);
  const MIDigraph flip = build_network(NetworkKind::kFlip, 5);
  EXPECT_TRUE(is_baseline_equivalent(omega.reverse()));
  EXPECT_TRUE(is_baseline_equivalent(flip));
}

TEST(NetworksTest, BaselineKindEqualsBaselineModule) {
  for (int n = 2; n <= 7; ++n) {
    EXPECT_EQ(build_network(NetworkKind::kBaseline, n),
              baseline_network(n));
  }
}

TEST(NetworksTest, ReverseBaselineKindIsBaselineReverse) {
  // Not necessarily the identical digraph (the PIPID sequence may relabel
  // cells), but both must be baseline-equivalent, and for our conventions
  // they should coincide exactly; assert at least equivalence, and flag
  // exact equality so conventions are visible.
  for (int n = 2; n <= 6; ++n) {
    const MIDigraph via_kind = build_network(NetworkKind::kReverseBaseline, n);
    EXPECT_TRUE(is_baseline_equivalent(via_kind)) << "n=" << n;
    EXPECT_TRUE(is_baseline_equivalent(reverse_baseline_network(n)));
  }
}

TEST(NetworksTest, DistinctTopologiesDiffer) {
  // The six networks are pairwise isomorphic but (for n >= 3) not
  // pairwise identical as labelled digraphs.
  const int n = 4;
  const MIDigraph omega = build_network(NetworkKind::kOmega, n);
  const MIDigraph ibc = build_network(NetworkKind::kIndirectBinaryCube, n);
  const MIDigraph baseline = build_network(NetworkKind::kBaseline, n);
  EXPECT_FALSE(omega == ibc);
  EXPECT_FALSE(omega == baseline);
  EXPECT_FALSE(ibc == baseline);
}

TEST(NetworksTest, RandomPipidNetworkIsValidAndIndependent) {
  MINEQ_SEEDED_RNG(rng, 107);
  for (int trial = 0; trial < 10; ++trial) {
    const MIDigraph g = random_pipid_network(5, rng);
    EXPECT_TRUE(g.is_valid());
    for (const Connection& conn : g.connections()) {
      EXPECT_TRUE(is_independent(conn));
      EXPECT_FALSE(conn.has_parallel_arcs());
    }
  }
}

TEST(NetworksTest, RandomIndependentNetworkStagesAreIndependent) {
  MINEQ_SEEDED_RNG(rng, 109);
  for (int trial = 0; trial < 10; ++trial) {
    const MIDigraph g = random_independent_network(5, rng);
    EXPECT_TRUE(g.is_valid());
    for (const Connection& conn : g.connections()) {
      EXPECT_TRUE(is_independent(conn));
    }
  }
}

TEST(NetworksTest, StageCountValidation) {
  EXPECT_THROW((void)build_network(NetworkKind::kOmega, 1), std::invalid_argument);
  MINEQ_SEEDED_RNG(rng, 113);
  EXPECT_THROW((void)random_pipid_network(1, rng), std::invalid_argument);
  EXPECT_THROW((void)random_independent_network(0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mineq::min
