/// \file golden_sim_test.cpp
/// \brief Golden-equivalence pins for the FabricCore refactor: every
/// counter and statistic below was captured from the pre-IR simulators
/// (PR 2's engine.cpp / wormhole.cpp, one deque-backed simulator per
/// discipline) at a fixed seed, and the policy-over-FabricCore rebuild
/// must reproduce them byte-for-byte. Integer counters are compared
/// exactly; doubles via EXPECT_DOUBLE_EQ against full-precision (%.17g)
/// literals, which round-trip exactly, so any drift in RNG stream
/// layout, arbitration order, slot assignment or accounting shows up
/// here as a hard failure rather than a plausible-looking number.

#include <gtest/gtest.h>

#include "fault/fault_mask.hpp"
#include "min/networks.hpp"
#include "sim/engine.hpp"

namespace mineq::sim {
namespace {

TEST(GoldenSimTest, StoreAndForwardOmega5UniformSeed42) {
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 5));
  SimConfig config;
  config.mode = SwitchingMode::kStoreAndForward;
  config.injection_rate = 0.7;
  config.packet_length = 3;
  config.queue_capacity = 4;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  config.seed = 42;
  const SimResult r = engine.run(Pattern::kUniform, config);

  EXPECT_EQ(r.offered, 6157U);
  EXPECT_EQ(r.injected, 3589U);
  EXPECT_EQ(r.delivered, 3246U);
  EXPECT_EQ(r.flits_injected, 10767U);
  EXPECT_EQ(r.flits_delivered, 9738U);
  EXPECT_EQ(r.flits_in_flight, 1029U);
  EXPECT_EQ(r.hol_blocking_cycles, 40414U);
  EXPECT_EQ(r.latency.count(), 3246U);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 49.411275415896377);
  EXPECT_DOUBLE_EQ(r.latency.max(), 121.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.5), 48.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.99), 96.0);
  EXPECT_DOUBLE_EQ(r.throughput, 0.202875);
  EXPECT_DOUBLE_EQ(r.acceptance, 0.58291375669969137);
  EXPECT_DOUBLE_EQ(r.link_utilization, 0.66739062500000002);
  EXPECT_DOUBLE_EQ(r.lane_occupancy.mean(), 0.52008124999999994);
}

TEST(GoldenSimTest, WormholeBaseline5HotspotSeed99) {
  const Engine engine(min::build_network(min::NetworkKind::kBaseline, 5));
  SimConfig config;
  config.mode = SwitchingMode::kWormhole;
  config.injection_rate = 0.8;
  config.packet_length = 4;
  config.lanes = 2;
  config.lane_depth = 4;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  config.seed = 99;
  const SimResult r = engine.run(Pattern::kHotSpot, config);

  EXPECT_EQ(r.offered, 11463U);
  EXPECT_EQ(r.injected, 546U);
  EXPECT_EQ(r.delivered, 426U);
  EXPECT_EQ(r.flits_injected, 2188U);
  EXPECT_EQ(r.flits_delivered, 1707U);
  EXPECT_EQ(r.flits_in_flight, 474U);
  EXPECT_EQ(r.hol_blocking_cycles, 56564U);
  EXPECT_EQ(r.latency.count(), 426U);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 81.577464788732385);
  EXPECT_DOUBLE_EQ(r.latency.max(), 359.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.5), 17.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.99), 336.0);
  EXPECT_DOUBLE_EQ(r.throughput, 0.026624999999999999);
  EXPECT_DOUBLE_EQ(r.acceptance, 0.047631510075896361);
  EXPECT_DOUBLE_EQ(r.link_utilization, 0.136421875);
  EXPECT_DOUBLE_EQ(r.lane_occupancy.mean(), 0.36309531249999988);
}

/// An all-zero FaultMask must take the unmasked fast path: the exact
/// pinned golden numbers, not merely plausible ones. (The faulted policy
/// instantiations are compile-time separate, so this guards the
/// dispatch, not just the policy code.)
TEST(GoldenSimTest, AllZeroFaultMaskReproducesGoldenOutputs) {
  {
    const Engine engine(min::build_network(min::NetworkKind::kOmega, 5));
    const fault::FaultMask empty(engine.wiring());
    SimConfig config;
    config.mode = SwitchingMode::kStoreAndForward;
    config.injection_rate = 0.7;
    config.packet_length = 3;
    config.queue_capacity = 4;
    config.warmup_cycles = 100;
    config.measure_cycles = 500;
    config.seed = 42;
    const SimResult r = engine.run(Pattern::kUniform, config, &empty);
    EXPECT_EQ(r.offered, 6157U);
    EXPECT_EQ(r.injected, 3589U);
    EXPECT_EQ(r.delivered, 3246U);
    EXPECT_EQ(r.hol_blocking_cycles, 40414U);
    EXPECT_DOUBLE_EQ(r.latency.mean(), 49.411275415896377);
    EXPECT_DOUBLE_EQ(r.link_utilization, 0.66739062500000002);
    EXPECT_EQ(r.packets_dropped_faulted, 0U);
    EXPECT_EQ(r.packets_rerouted, 0U);
  }
  {
    const Engine engine(min::build_network(min::NetworkKind::kBaseline, 5));
    const fault::FaultMask empty(engine.wiring());
    SimConfig config;
    config.mode = SwitchingMode::kWormhole;
    config.injection_rate = 0.8;
    config.packet_length = 4;
    config.lanes = 2;
    config.lane_depth = 4;
    config.warmup_cycles = 100;
    config.measure_cycles = 500;
    config.seed = 99;
    const SimResult r = engine.run(Pattern::kHotSpot, config, &empty);
    EXPECT_EQ(r.offered, 11463U);
    EXPECT_EQ(r.injected, 546U);
    EXPECT_EQ(r.delivered, 426U);
    EXPECT_EQ(r.hol_blocking_cycles, 56564U);
    EXPECT_DOUBLE_EQ(r.latency.mean(), 81.577464788732385);
    EXPECT_DOUBLE_EQ(r.link_utilization, 0.136421875);
    EXPECT_EQ(r.packets_dropped_faulted, 0U);
    EXPECT_EQ(r.packets_rerouted, 0U);
  }
}

/// The golden configs must also be self-consistent on repeat runs: the
/// pins above would not catch a stateful Engine.
TEST(GoldenSimTest, RepeatRunsAreIdentical) {
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 5));
  SimConfig config;
  config.injection_rate = 0.7;
  config.packet_length = 3;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  config.seed = 42;
  const SimResult a = engine.run(Pattern::kUniform, config);
  const SimResult b = engine.run(Pattern::kUniform, config);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.hol_blocking_cycles, b.hol_blocking_cycles);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

}  // namespace
}  // namespace mineq::sim
