/// \file test_seed.hpp
/// \brief Reproducible seeding for randomized test suites.
///
/// Every randomized suite derives its generators from one base seed, read
/// from the MINEQ_TEST_SEED environment variable when set (ctest forwards
/// it, and the MINEQ_TEST_SEED cache variable pins it as a test property)
/// and a fixed default otherwise. MINEQ_SEEDED_RNG records the base seed
/// via SCOPED_TRACE, so any failure in its scope prints the exact
/// MINEQ_TEST_SEED value needed to reproduce the red run.

#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/rng.hpp"

namespace mineq::test {

/// Base seed for randomized suites: MINEQ_TEST_SEED if it parses fully as
/// an unsigned integer (decimal, 0x-hex, or 0-octal), else a fixed default.
inline std::uint64_t test_seed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("MINEQ_TEST_SEED")) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0') return std::uint64_t{value};
    }
    return std::uint64_t{0x1CC1988};
  }();
  return seed;
}

/// An independent generator for one call site. Distinct \p stream values
/// give decorrelated streams; the same (base seed, stream) pair always
/// yields the same sequence.
inline util::SplitMix64 seeded_rng(std::uint64_t stream) {
  return util::SplitMix64(test_seed()).split(stream);
}

/// The trace message attached to every seeded scope.
inline std::string seed_trace() {
  return "MINEQ_TEST_SEED=" + std::to_string(test_seed());
}

}  // namespace mineq::test

/// Declare a SplitMix64 named \p name drawing from stream \p stream of the
/// suite-wide base seed, and log that seed on any failure in this scope.
#define MINEQ_SEEDED_RNG(name, stream)       \
  SCOPED_TRACE(::mineq::test::seed_trace()); \
  ::mineq::util::SplitMix64 name = ::mineq::test::seeded_rng(stream)
