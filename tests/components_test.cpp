#include "graph/components.hpp"

#include <gtest/gtest.h>

namespace mineq::graph {
namespace {

TEST(ComponentsTest, IsolatedNodes) {
  const Digraph g(4);
  EXPECT_EQ(component_count(g), 4U);
  const auto labeling = connected_components(g);
  EXPECT_EQ(labeling.count, 4U);
  // Labels assigned in node order.
  for (std::uint32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(labeling.labels[v], v);
  }
}

TEST(ComponentsTest, DirectionIgnored) {
  Digraph g(3);
  g.add_arc(2, 0);  // undirected connectivity: {0,2}, {1}
  EXPECT_EQ(component_count(g), 2U);
  const auto labeling = connected_components(g);
  EXPECT_EQ(labeling.labels[0], labeling.labels[2]);
  EXPECT_NE(labeling.labels[0], labeling.labels[1]);
}

TEST(ComponentsTest, Sizes) {
  Digraph g(6);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(3, 4);
  const auto sizes = component_sizes(g);
  ASSERT_EQ(sizes.size(), 3U);
  EXPECT_EQ(sizes[0], 3U);
  EXPECT_EQ(sizes[1], 2U);
  EXPECT_EQ(sizes[2], 1U);
}

TEST(ComponentsTest, ParallelArcsDoNotDouble) {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(0, 1);
  EXPECT_EQ(component_count(g), 1U);
}

TEST(ComponentsTest, EmptyGraph) {
  const Digraph g(0);
  EXPECT_EQ(component_count(g), 0U);
  EXPECT_TRUE(component_sizes(g).empty());
}

}  // namespace
}  // namespace mineq::graph
