/// \file credit_test.cpp
/// \brief Credit-based link-level flow control and virtual-lane
/// arbitration: neutral-config byte-equivalence to the idealized
/// handshake, the credit-conservation invariant under traffic x faults x
/// radices x return latencies, per-SL latency separation under weighted
/// and priority arbitration, arbiter state validation, and the
/// CreditConfig rejection surface.

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault_model.hpp"
#include "min/kary.hpp"
#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "sim/fabric.hpp"
#include "test_seed.hpp"

namespace mineq::sim {
namespace {

SimConfig saf_golden_config() {
  SimConfig config;
  config.mode = SwitchingMode::kStoreAndForward;
  config.injection_rate = 0.7;
  config.packet_length = 3;
  config.queue_capacity = 4;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  config.seed = 42;
  return config;
}

SimConfig wormhole_golden_config() {
  SimConfig config;
  config.mode = SwitchingMode::kWormhole;
  config.injection_rate = 0.8;
  config.packet_length = 4;
  config.lanes = 2;
  config.lane_depth = 4;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  config.seed = 99;
  return config;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.flits_in_flight, b.flits_in_flight);
  EXPECT_EQ(a.hol_blocking_cycles, b.hol_blocking_cycles);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_DOUBLE_EQ(a.latency.max(), b.latency.max());
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.acceptance, b.acceptance);
  EXPECT_DOUBLE_EQ(a.link_utilization, b.link_utilization);
  EXPECT_DOUBLE_EQ(a.lane_occupancy.mean(), b.lane_occupancy.mean());
}

/// Credits with return latency 0 ARE the idealized handshake: within a
/// cycle every downstream pop precedes the upstream push opportunity, so
/// a zero-latency credit count always equals the free-slot count the
/// ideal probe reads. The PR 5 goldens must reproduce byte for byte —
/// pinned against the committed literals, not a parallel run, so this
/// breaks loudly if either path drifts.
TEST(CreditTest, NeutralCreditsReproduceTheSafGoldenExactly) {
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 5));
  SimConfig config = saf_golden_config();
  config.credits.enabled = true;
  config.credits.return_latency = 0;
  const SimResult r = engine.run(Pattern::kUniform, config);

  EXPECT_EQ(r.offered, 6157U);
  EXPECT_EQ(r.injected, 3589U);
  EXPECT_EQ(r.delivered, 3246U);
  EXPECT_EQ(r.flits_injected, 10767U);
  EXPECT_EQ(r.flits_delivered, 9738U);
  EXPECT_EQ(r.flits_in_flight, 1029U);
  EXPECT_EQ(r.hol_blocking_cycles, 40414U);
  EXPECT_EQ(r.latency.count(), 3246U);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 49.411275415896377);
  EXPECT_DOUBLE_EQ(r.latency.max(), 121.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.5), 48.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.99), 96.0);
  EXPECT_DOUBLE_EQ(r.throughput, 0.202875);
  EXPECT_DOUBLE_EQ(r.acceptance, 0.58291375669969137);
  EXPECT_DOUBLE_EQ(r.link_utilization, 0.66739062500000002);
  EXPECT_DOUBLE_EQ(r.lane_occupancy.mean(), 0.52008124999999994);
  EXPECT_EQ(r.credit_violations, 0U);
}

TEST(CreditTest, NeutralCreditsReproduceTheWormholeGoldenExactly) {
  const Engine engine(min::build_network(min::NetworkKind::kBaseline, 5));
  SimConfig config = wormhole_golden_config();
  config.credits.enabled = true;
  config.credits.return_latency = 0;
  const SimResult r = engine.run(Pattern::kHotSpot, config);

  EXPECT_EQ(r.offered, 11463U);
  EXPECT_EQ(r.injected, 546U);
  EXPECT_EQ(r.delivered, 426U);
  EXPECT_EQ(r.flits_injected, 2188U);
  EXPECT_EQ(r.flits_delivered, 1707U);
  EXPECT_EQ(r.flits_in_flight, 474U);
  EXPECT_EQ(r.hol_blocking_cycles, 56564U);
  EXPECT_EQ(r.latency.count(), 426U);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 81.577464788732385);
  EXPECT_DOUBLE_EQ(r.latency.max(), 359.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.5), 17.0);
  EXPECT_DOUBLE_EQ(r.latency_histogram.quantile(0.99), 336.0);
  EXPECT_DOUBLE_EQ(r.throughput, 0.026624999999999999);
  EXPECT_DOUBLE_EQ(r.acceptance, 0.047631510075896361);
  EXPECT_DOUBLE_EQ(r.link_utilization, 0.136421875);
  EXPECT_DOUBLE_EQ(r.lane_occupancy.mean(), 0.36309531249999988);
  EXPECT_EQ(r.credit_violations, 0U);
}

/// Weighted arbitration with uniform weights degrades to plain
/// round-robin (the quantum expires after every grant), and strict
/// priority with one weight class filters nothing — both must match the
/// disabled-credit run byte for byte, not approximately.
TEST(CreditTest, UniformWeightedAndPriorityDegradeToRoundRobin) {
  for (const bool wormhole : {false, true}) {
    const Engine engine(min::build_network(
        wormhole ? min::NetworkKind::kBaseline : min::NetworkKind::kOmega,
        5));
    const SimConfig plain_config =
        wormhole ? wormhole_golden_config() : saf_golden_config();
    const Pattern pattern =
        wormhole ? Pattern::kHotSpot : Pattern::kUniform;
    const SimResult plain = engine.run(pattern, plain_config);
    for (const ArbitrationPolicy policy :
         {ArbitrationPolicy::kWeighted, ArbitrationPolicy::kPriority}) {
      SimConfig config = plain_config;
      config.credits.enabled = true;
      config.credits.return_latency = 0;
      config.credits.arbitration = policy;
      // Uniform weights, spelled two ways: empty (all default 1) and an
      // explicit broadcast list.
      config.credits.weights = {};
      expect_identical(plain, engine.run(pattern, config));
      config.credits.weights = {1};
      expect_identical(plain, engine.run(pattern, config));
    }
  }
}

/// The conservation invariant — credits held + credit messages in flight
/// + occupancy == capacity, per link, every sampled cycle — audited by
/// the policies themselves into credit_violations, across disciplines x
/// radices x faults x return latencies. The flit ledger must close
/// exactly too (warmup 0).
TEST(CreditTest, ConservationHoldsAcrossFaultsRadicesAndLatencies) {
  SCOPED_TRACE(test::seed_trace());
  for (const int radix : {2, 3}) {
    const Engine engine(radix == 2
                            ? Engine(min::build_network(
                                  min::NetworkKind::kBaseline, 5))
                            : Engine(min::build_kary_network(
                                  min::NetworkKind::kBaseline, 4, radix)));
    for (const SwitchingMode mode :
         {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
      for (const fault::FaultKind kind :
           {fault::FaultKind::kNone, fault::FaultKind::kRandomLinks,
            fault::FaultKind::kSwitchKills}) {
        const fault::FaultMask mask = fault::build_fault_mask(
            engine.wiring(),
            fault::FaultSpec{kind, kind == fault::FaultKind::kNone ? 0.0
                                                                   : 0.1,
                             test::test_seed()});
        for (const std::uint64_t latency : {0U, 1U, 3U}) {
          SimConfig config;
          config.mode = mode;
          config.injection_rate = 0.7;
          config.packet_length = 3;
          config.lanes = 2;
          config.warmup_cycles = 0;  // exact conservation ledger
          config.measure_cycles = 400;
          config.seed = 77;
          config.credits.enabled = true;
          config.credits.return_latency = latency;
          const SimResult r =
              engine.run(Pattern::kUniform, config, &mask);
          EXPECT_EQ(r.credit_violations, 0U)
              << "radix " << radix << " " << switching_mode_name(mode)
              << " " << fault::fault_kind_name(kind) << " latency "
              << latency;
          EXPECT_EQ(r.flits_injected, r.flits_delivered +
                                          r.flits_in_flight +
                                          r.flits_dropped_faulted)
              << "radix " << radix << " " << switching_mode_name(mode)
              << " " << fault::fault_kind_name(kind) << " latency "
              << latency;
        }
      }
    }
  }
}

/// A positive return latency shrinks the effective flow-control window,
/// so under load senders must actually stall on missing credits — the
/// counter is live, and throughput degrades monotonically-ish (pinned
/// loosely: long latency strictly below zero latency).
TEST(CreditTest, ReturnLatencyCausesStallsAndDegradesThroughput) {
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 5));
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    SimConfig config;
    config.mode = mode;
    config.injection_rate = 1.0;
    config.packet_length = 3;
    config.lanes = 2;
    config.warmup_cycles = 100;
    config.measure_cycles = 500;
    config.seed = 5;
    config.credits.enabled = true;

    config.credits.return_latency = 16;
    const SimResult slow = engine.run(Pattern::kUniform, config);
    EXPECT_GT(slow.credit_stall_cycles, 0U) << switching_mode_name(mode);

    config.credits.return_latency = 0;
    const SimResult fast = engine.run(Pattern::kUniform, config);
    EXPECT_LT(slow.throughput, fast.throughput)
        << switching_mode_name(mode);
  }
}

/// Under saturation with two service levels mapped to two virtual lanes,
/// weighted (4:1) and strict-priority arbitration must open a measurable
/// latency gap in favor of the heavy class; plain round-robin must not.
TEST(CreditTest, WeightedArbitrationSeparatesServiceLevels) {
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 5));
  SimConfig config;
  config.mode = SwitchingMode::kWormhole;
  config.injection_rate = 1.0;
  config.packet_length = 4;
  config.lanes = 2;
  config.lane_depth = 4;
  config.warmup_cycles = 100;
  config.measure_cycles = 800;
  config.seed = 9;
  config.credits.enabled = true;
  config.credits.sl_map = {0, 1};
  config.credits.weights = {4, 1};

  config.credits.arbitration = ArbitrationPolicy::kRoundRobin;
  const SimResult rr = engine.run(Pattern::kUniform, config);
  config.credits.arbitration = ArbitrationPolicy::kWeighted;
  const SimResult weighted = engine.run(Pattern::kUniform, config);
  config.credits.arbitration = ArbitrationPolicy::kPriority;
  const SimResult priority = engine.run(Pattern::kUniform, config);

  ASSERT_EQ(rr.sl_latency.size(), 2U);
  ASSERT_EQ(weighted.sl_latency.size(), 2U);
  ASSERT_EQ(priority.sl_latency.size(), 2U);
  ASSERT_GT(weighted.sl_latency[0].count(), 0U);
  ASSERT_GT(weighted.sl_latency[1].count(), 0U);
  // Round-robin treats the classes symmetrically: the gap stays small.
  const double rr_gap = rr.sl_latency[1].mean() - rr.sl_latency[0].mean();
  // Weighted 4:1 favors SL 0 measurably; strict priority more so.
  const double weighted_gap =
      weighted.sl_latency[1].mean() - weighted.sl_latency[0].mean();
  const double priority_gap =
      priority.sl_latency[1].mean() - priority.sl_latency[0].mean();
  EXPECT_GT(weighted_gap, rr_gap + 5.0);
  EXPECT_GT(priority_gap, rr_gap + 5.0);
  EXPECT_LT(weighted.sl_latency[0].mean(), rr.sl_latency[0].mean());
  // The per-VL occupancy columns are populated for every policy.
  EXPECT_EQ(rr.vl_occupancy.size(), 2U);
  EXPECT_GT(rr.vl_occupancy[0].count(), 0U);
}

/// Per-VL occupancy is sampled for the SAF discipline too (one physical
/// buffer per link, so a single lane-0 series), and sl_latency splits by
/// terminal-derived service level.
TEST(CreditTest, SafCreditRunsReportVlOccupancyAndSlLatency) {
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 4));
  SimConfig config;
  config.injection_rate = 0.6;
  config.packet_length = 3;
  config.warmup_cycles = 50;
  config.measure_cycles = 300;
  config.credits.enabled = true;
  config.credits.sl_map = {0, 0};  // 2 SLs, both on the single buffer
  const SimResult r = engine.run(Pattern::kUniform, config);
  ASSERT_EQ(r.vl_occupancy.size(), 1U);
  EXPECT_GT(r.vl_occupancy[0].count(), 0U);
  ASSERT_EQ(r.sl_latency.size(), 2U);
  EXPECT_GT(r.sl_latency[0].count(), 0U);
  EXPECT_GT(r.sl_latency[1].count(), 0U);
  EXPECT_EQ(r.sl_latency[0].count() + r.sl_latency[1].count(),
            r.latency.count());
  EXPECT_EQ(r.credit_violations, 0U);
}

/// SimWorkspace reuse across configurations of different shapes (port
/// counts, radices, credit latencies): the arena must re-initialize the
/// arbiter/ledger state per run, so reused-workspace results are byte-
/// identical to fresh-workspace results in any interleaving.
TEST(CreditTest, WorkspaceReuseAcrossShapesIsByteIdentical) {
  const Engine small(min::build_network(min::NetworkKind::kOmega, 4));
  const Engine large(min::build_network(min::NetworkKind::kBaseline, 6));
  const Engine kary(min::build_kary_network(min::NetworkKind::kOmega, 4, 3));
  SimConfig config;
  config.injection_rate = 0.8;
  config.packet_length = 3;
  config.warmup_cycles = 50;
  config.measure_cycles = 300;
  config.credits.enabled = true;
  config.credits.return_latency = 2;
  config.credits.arbitration = ArbitrationPolicy::kWeighted;

  const SimResult small_fresh = small.run(Pattern::kUniform, config);
  const SimResult large_fresh = large.run(Pattern::kUniform, config);
  const SimResult kary_fresh = kary.run(Pattern::kUniform, config);

  SimWorkspace workspace;
  // Interleave shapes through one arena, twice around.
  for (int round = 0; round < 2; ++round) {
    expect_identical(small_fresh, small.run(Pattern::kUniform, config,
                                            nullptr, &workspace));
    expect_identical(large_fresh, large.run(Pattern::kUniform, config,
                                            nullptr, &workspace));
    expect_identical(kary_fresh, kary.run(Pattern::kUniform, config,
                                          nullptr, &workspace));
  }
}

TEST(CreditTest, ValidationRejectsBadConfigs) {
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 4));
  SimConfig config;
  config.credits.enabled = true;

  // Weight 0 is meaningless (a quantum that never grants).
  config.credits.weights = {0};
  EXPECT_THROW(engine.run(Pattern::kUniform, config),
               std::invalid_argument);
  config.credits.weights = {1, 0, 2};
  EXPECT_THROW(engine.run(Pattern::kUniform, config),
               std::invalid_argument);
  config.credits.weights.clear();

  // Wormhole: an SL->VL entry must name an existing lane.
  config.mode = SwitchingMode::kWormhole;
  config.lanes = 2;
  config.credits.sl_map = {0, 2};
  EXPECT_THROW(engine.run(Pattern::kUniform, config),
               std::invalid_argument);
  config.credits.sl_map = {0, 1};
  EXPECT_NO_THROW(engine.run(Pattern::kUniform, config));

  // Unbounded return latency is rejected up front.
  config.credits.sl_map.clear();
  config.credits.return_latency = std::uint64_t{1} << 32;
  EXPECT_THROW(engine.run(Pattern::kUniform, config),
               std::invalid_argument);

  // Disabled credits ignore the rest of the struct entirely.
  config.credits.enabled = false;
  EXPECT_NO_THROW(engine.run(Pattern::kUniform, config));
}

TEST(CreditTest, ArbitrationPolicyNamesRoundTrip) {
  for (const ArbitrationPolicy policy :
       {ArbitrationPolicy::kRoundRobin, ArbitrationPolicy::kWeighted,
        ArbitrationPolicy::kPriority}) {
    EXPECT_EQ(parse_arbitration_policy(
                  std::string(arbitration_policy_name(policy))),
              policy);
  }
  EXPECT_EQ(parse_arbitration_policy("round-robin"),
            ArbitrationPolicy::kRoundRobin);
  EXPECT_THROW((void)parse_arbitration_policy("fifo"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Arbiter and ledger state machines (satellite bugfixes)
// ---------------------------------------------------------------------

TEST(RoundRobinTest, RejectsEmptyRingAndOutOfRangeWinner) {
  EXPECT_THROW(RoundRobin(0), std::invalid_argument);
  RoundRobin arb(2);
  EXPECT_NO_THROW(arb.grant(1));
  // Granting a candidate index outside the ring used to silently corrupt
  // the pointer (next_ beyond size_); now it is a hard logic error.
  EXPECT_THROW(arb.grant(2), std::logic_error);
}

TEST(WeightedRoundRobinTest, QuantumSemantics) {
  WeightedRoundRobin wrr;
  EXPECT_THROW(wrr.reset(1, 0), std::invalid_argument);
  wrr.reset(1, 3);
  EXPECT_THROW(wrr.grant(0, 3, 1), std::logic_error);
  // Weight 1 behaves exactly like round-robin: pointer advances on every
  // grant.
  EXPECT_EQ(wrr.candidate(0, 0), 0U);
  wrr.grant(0, 0, 1);
  EXPECT_EQ(wrr.candidate(0, 0), 1U);
  // Weight 2 holds top priority for one more grant, then advances.
  wrr.grant(0, 1, 2);
  EXPECT_EQ(wrr.candidate(0, 0), 1U);
  wrr.grant(0, 1, 2);
  EXPECT_EQ(wrr.candidate(0, 0), 2U);
  // A different winner (the holder was not ready) restarts its quantum.
  wrr.grant(0, 0, 2);
  EXPECT_EQ(wrr.candidate(0, 0), 0U);
}

TEST(CreditLedgerTest, RingDeliversAtTheConfiguredLatency) {
  CreditLedger ledger;
  EXPECT_THROW(ledger.reset(1, 0, 0), std::invalid_argument);
  ledger.reset(2, 2, 3);
  EXPECT_EQ(ledger.credits(0), 2U);
  ledger.consume(0);
  ledger.consume(0);
  EXPECT_FALSE(ledger.available(0));
  ledger.give_back(0, /*cycle=*/10);
  EXPECT_EQ(ledger.in_flight(0), 1U);
  // Not delivered before 3 cycles elapse.
  ledger.deliver(11);
  ledger.deliver(12);
  EXPECT_FALSE(ledger.available(0));
  ledger.deliver(13);
  EXPECT_TRUE(ledger.available(0));
  EXPECT_EQ(ledger.in_flight(0), 0U);
  // Returning more credits than were consumed is a ledger corruption.
  ledger.give_back(0, 14);
  ledger.deliver(17);
  EXPECT_THROW(ledger.give_back(0, 18), std::logic_error);
  // Link 1 was untouched throughout.
  EXPECT_EQ(ledger.credits(1), 2U);
}

}  // namespace
}  // namespace mineq::sim
