#include "min/independence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(IndependenceTest, Width0And1Basics) {
  EXPECT_TRUE(is_independent(Connection()));
  EXPECT_TRUE(is_independent_definition(Connection()));
  // Every width-1 connection is independent: beta = f(x^1)^f(x) is forced
  // by the single nonzero alpha... but only when f and g shift by the SAME
  // beta. Constant-vs-swap mix is not independent:
  const Connection mixed({0, 0}, {0, 1}, 1);  // f const, g identity
  EXPECT_FALSE(is_independent(mixed));
  EXPECT_FALSE(is_independent_definition(mixed));
  const Connection both_const({0, 0}, {1, 1}, 1);
  EXPECT_TRUE(is_independent(both_const));
}

TEST(IndependenceTest, FastEqualsDefinitionExhaustivelyWidth2) {
  // All 256 * 256 width-2 connections: the structural O(N) test and the
  // paper's definition agree everywhere.
  std::size_t independent_count = 0;
  for (std::uint32_t f_code = 0; f_code < 256; ++f_code) {
    std::vector<std::uint32_t> f(4);
    for (int i = 0; i < 4; ++i) f[static_cast<std::size_t>(i)] = (f_code >> (2 * i)) & 3U;
    for (std::uint32_t g_code = 0; g_code < 256; ++g_code) {
      std::vector<std::uint32_t> g(4);
      for (int i = 0; i < 4; ++i) {
        g[static_cast<std::size_t>(i)] = (g_code >> (2 * i)) & 3U;
      }
      const Connection conn(f, g, 2);
      const bool fast = is_independent(conn);
      ASSERT_EQ(fast, is_independent_definition(conn))
          << "f_code=" << f_code << " g_code=" << g_code;
      if (fast) ++independent_count;
    }
  }
  // Independent connections = pairs (L, c_f, c_g): 16 linear maps * 4 * 4.
  EXPECT_EQ(independent_count, 16U * 4U * 4U);
}

TEST(IndependenceTest, FastEqualsDefinitionRandomWidth3To5) {
  MINEQ_SEEDED_RNG(rng, 21);
  for (int w = 3; w <= 5; ++w) {
    for (int trial = 0; trial < 50; ++trial) {
      // Mix of random junk and genuine independent connections.
      const Connection conn =
          trial % 3 == 0
              ? Connection::random_valid(w, rng)
              : (trial % 3 == 1
                     ? Connection::random_independent_case1(w, rng)
                     : Connection::random_independent_case2(w, rng));
      EXPECT_EQ(is_independent(conn), is_independent_definition(conn))
          << "w=" << w << " trial=" << trial;
    }
  }
}

TEST(IndependenceTest, LinearFormRecoversConstruction) {
  MINEQ_SEEDED_RNG(rng, 23);
  for (int w = 1; w <= 6; ++w) {
    const gf2::Matrix l = gf2::Matrix::random(w, w, rng);
    const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
    const std::uint64_t cf = rng.next() & mask;
    const std::uint64_t cg = rng.next() & mask;
    const Connection conn = Connection::from_affine(gf2::AffineMap(l, cf),
                                                    gf2::AffineMap(l, cg));
    const auto lf = linear_form(conn);
    ASSERT_TRUE(lf.has_value());
    EXPECT_EQ(lf->linear, l);
    EXPECT_EQ(lf->c_f, cf);
    EXPECT_EQ(lf->c_g, cg);
  }
}

TEST(IndependenceTest, LinearFormRejectsDifferentLinearParts) {
  MINEQ_SEEDED_RNG(rng, 29);
  const gf2::Matrix l1 = gf2::Matrix::random_invertible(3, rng);
  gf2::Matrix l2 = l1;
  l2.set(0, 0, l2.at(0, 0) ^ 1U);
  const Connection conn = Connection::from_affine(gf2::AffineMap(l1, 0),
                                                  gf2::AffineMap(l2, 0));
  EXPECT_FALSE(linear_form(conn).has_value());
  EXPECT_FALSE(is_independent_definition(conn));
}

TEST(IndependenceTest, BetaMapIsTheLinearImage) {
  // Paper: f(x ^ alpha) = beta ^ f(x) with beta = L(alpha).
  MINEQ_SEEDED_RNG(rng, 31);
  const Connection conn = Connection::random_independent_case2(4, rng);
  const auto beta = beta_map(conn);
  ASSERT_TRUE(beta.has_value());
  EXPECT_EQ((*beta)[0], 0U);
  const auto& f = conn.f_table();
  const auto& g = conn.g_table();
  for (std::uint32_t alpha = 1; alpha < 16; ++alpha) {
    for (std::uint32_t x = 0; x < 16; ++x) {
      EXPECT_EQ(f[x ^ alpha], (*beta)[alpha] ^ f[x]);
      EXPECT_EQ(g[x ^ alpha], (*beta)[alpha] ^ g[x]);
    }
  }
}

TEST(IndependenceTest, ClassifyStageCases) {
  MINEQ_SEEDED_RNG(rng, 37);
  EXPECT_EQ(classify_stage(Connection::random_independent_case1(4, rng)),
            StageCase::kCase1);
  EXPECT_EQ(classify_stage(Connection::random_independent_case2(4, rng)),
            StageCase::kCase2);
  EXPECT_EQ(classify_stage(Connection::random_valid(4, rng)),
            StageCase::kNotIndependent);
  // Independent but rank-deficient by 2: some vertex gets in-degree 4.
  const Connection degenerate = Connection::from_affine(
      gf2::AffineMap(gf2::Matrix(2, 2), 0b00),
      gf2::AffineMap(gf2::Matrix(2, 2), 0b01));
  EXPECT_EQ(classify_stage(degenerate), StageCase::kInvalidDegrees);
}

TEST(IndependenceTest, ReverseIndependentIsIndependentCase1) {
  // Proposition 1, first case: f and g bijections.
  MINEQ_SEEDED_RNG(rng, 41);
  for (int w = 1; w <= 6; ++w) {
    const Connection conn = Connection::random_independent_case1(w, rng);
    const Connection rev = conn.reverse_independent();
    EXPECT_TRUE(is_independent(rev)) << "w=" << w;
    EXPECT_TRUE(rev.is_valid_stage());
    // phi = f^{-1}: f(phi(y)) == y.
    for (std::uint32_t y = 0; y < conn.cells(); ++y) {
      EXPECT_EQ(conn.f(rev.f(y)), y);
      EXPECT_EQ(conn.g(rev.g(y)), y);
    }
  }
}

TEST(IndependenceTest, ReverseIndependentIsIndependentCase2) {
  // Proposition 1, second case: the A/B translated-set construction.
  MINEQ_SEEDED_RNG(rng, 43);
  for (int w = 1; w <= 6; ++w) {
    for (int trial = 0; trial < 10; ++trial) {
      const Connection conn = Connection::random_independent_case2(w, rng);
      const Connection rev = conn.reverse_independent();
      EXPECT_TRUE(is_independent(rev)) << "w=" << w;
      EXPECT_TRUE(rev.is_valid_stage());
      // (phi, psi) must reverse the arcs: x is a parent of y iff y is a
      // child of x in the reverse.
      for (std::uint32_t y = 0; y < conn.cells(); ++y) {
        for (std::uint32_t parent : {rev.f(y), rev.g(y)}) {
          EXPECT_TRUE(conn.f(parent) == y || conn.g(parent) == y);
        }
      }
    }
  }
}

TEST(IndependenceTest, ReverseIndependentRejectsNonIndependent) {
  MINEQ_SEEDED_RNG(rng, 47);
  Connection conn = Connection::random_valid(4, rng);
  while (is_independent(conn)) {
    conn = Connection::random_valid(4, rng);
  }
  EXPECT_THROW((void)conn.reverse_independent(), std::invalid_argument);
}

TEST(IndependenceTest, OrientRecoversScrambledIndependent) {
  // Swap f/g on a random subset of cells; the unordered child sets still
  // admit an independent orientation and orient_independent finds it.
  MINEQ_SEEDED_RNG(rng, 53);
  for (int w = 1; w <= 5; ++w) {
    for (int trial = 0; trial < 10; ++trial) {
      const Connection original =
          trial % 2 == 0 ? Connection::random_independent_case1(w, rng)
                         : Connection::random_independent_case2(w, rng);
      std::vector<std::uint32_t> f = original.f_table();
      std::vector<std::uint32_t> g = original.g_table();
      for (std::uint32_t x = 0; x < original.cells(); ++x) {
        if (rng.chance(1, 2)) std::swap(f[x], g[x]);
      }
      const Connection scrambled(f, g, w);
      const auto oriented = orient_independent(scrambled);
      ASSERT_TRUE(oriented.has_value()) << "w=" << w;
      EXPECT_TRUE(is_independent(*oriented));
      // Same unordered child sets.
      for (std::uint32_t x = 0; x < original.cells(); ++x) {
        std::array<std::uint32_t, 2> a = oriented->children(x);
        std::array<std::uint32_t, 2> b = scrambled.children(x);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(IndependenceTest, OrientRejectsHopelessConnections) {
  MINEQ_SEEDED_RNG(rng, 59);
  int rejected = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Connection conn = Connection::random_valid(4, rng);
    const auto oriented = orient_independent(conn);
    if (!oriented.has_value()) {
      ++rejected;
    } else {
      EXPECT_TRUE(is_independent(*oriented));
    }
  }
  // Random width-4 connections are essentially never orientable.
  EXPECT_GE(rejected, 18);
}

}  // namespace
}  // namespace mineq::min
