#include "min/baseline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "graph/isomorphism.hpp"
#include "min/banyan.hpp"
#include "min/independence.hpp"
#include "min/networks.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(BaselineTest, ClosedFormEqualsLiteralRecursion) {
  for (int n = 1; n <= 9; ++n) {
    EXPECT_EQ(baseline_network(n), baseline_network_recursive(n))
        << "n=" << n;
  }
}

TEST(BaselineTest, FirstStageMatchesPaperDefinition) {
  // "nodes 2i and 2i+1 of stage 1 are connected to the ith nodes of the
  // two subnetworks": sub-0 occupies cells 0..3, sub-1 cells 4..7 (n=4).
  const MIDigraph g = baseline_network(4);
  const Connection& first = g.connection(0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first.f(2 * i), i);
    EXPECT_EQ(first.f(2 * i + 1), i);
    EXPECT_EQ(first.g(2 * i), i + 4);
    EXPECT_EQ(first.g(2 * i + 1), i + 4);
  }
}

TEST(BaselineTest, AllStagesAreIndependentCase2) {
  const MIDigraph g = baseline_network(6);
  for (const Connection& conn : g.connections()) {
    EXPECT_EQ(classify_stage(conn), StageCase::kCase2);
  }
}

TEST(BaselineTest, IsValidAndBanyan) {
  for (int n = 1; n <= 8; ++n) {
    const MIDigraph g = baseline_network(n);
    EXPECT_TRUE(g.is_valid());
    EXPECT_TRUE(is_banyan(g));
  }
}

TEST(BaselineTest, ReverseBaselineIsReverse) {
  for (int n = 2; n <= 6; ++n) {
    EXPECT_EQ(reverse_baseline_network(n), baseline_network(n).reverse());
  }
}

TEST(BaselineTest, ReverseOfReverseIsOriginalDigraph) {
  // reverse_generic orders parents canonically, so double reversal must
  // reproduce the same unordered structure; check via isomorphism of the
  // layered digraphs and exact equality of child sets.
  const MIDigraph g = baseline_network(5);
  const MIDigraph back = g.reverse().reverse();
  for (int s = 0; s + 1 < g.stages(); ++s) {
    for (std::uint32_t x = 0; x < g.cells_per_stage(); ++x) {
      std::array<std::uint32_t, 2> a = g.children(s, x);
      std::array<std::uint32_t, 2> b = back.children(s, x);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b);
    }
  }
}

TEST(BaselineTest, LeftRecursiveVerifierAcceptsBaseline) {
  for (int n = 1; n <= 7; ++n) {
    EXPECT_TRUE(is_left_recursive_baseline(baseline_network(n))) << n;
  }
}

TEST(BaselineTest, LeftRecursiveVerifierAcceptsScrambledBaseline) {
  // The property is isomorphism-invariant.
  MINEQ_SEEDED_RNG(rng, 89);
  const MIDigraph g = test::scrambled_copy(baseline_network(5), rng);
  EXPECT_TRUE(is_left_recursive_baseline(g));
}

TEST(BaselineTest, LeftRecursiveVerifierRejectsNonBanyan) {
  // All-identity network: stage 1..n-1 does not split into 2 components.
  std::vector<Connection> connections;
  for (int s = 0; s < 3; ++s) {
    connections.push_back(Connection::from_functions(
        3, [](std::uint32_t x) { return x; },
        [](std::uint32_t x) { return x; }));
  }
  const MIDigraph g(4, std::move(connections));
  EXPECT_FALSE(is_left_recursive_baseline(g));
}

TEST(BaselineTest, BaselinePipidSequenceReproducesClosedForm) {
  // The sigma_k^{-1} wiring sequence is not merely isomorphic to the
  // recursive construction — it is the identical digraph.
  for (int n = 2; n <= 8; ++n) {
    EXPECT_EQ(build_network(NetworkKind::kBaseline, n), baseline_network(n))
        << "n=" << n;
  }
}

TEST(BaselineTest, ScrambledBaselineIsIsomorphic) {
  MINEQ_SEEDED_RNG(rng, 97);
  const MIDigraph g = baseline_network(4);
  const MIDigraph h = test::scrambled_copy(g, rng);
  const auto mapping =
      graph::find_layered_isomorphism(g.to_layered(), h.to_layered());
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(
      graph::verify_layered_isomorphism(g.to_layered(), h.to_layered(),
                                        *mapping));
}

}  // namespace
}  // namespace mineq::min
