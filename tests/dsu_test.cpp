#include "graph/dsu.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mineq::graph {
namespace {

TEST(DSUTest, StartsAsSingletons) {
  DSU dsu(5);
  EXPECT_EQ(dsu.components(), 5U);
  EXPECT_EQ(dsu.size(), 5U);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dsu.find(i), i);
    EXPECT_EQ(dsu.component_size(i), 1U);
  }
}

TEST(DSUTest, UniteMergesComponents) {
  DSU dsu(6);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_FALSE(dsu.unite(0, 1));  // already merged
  EXPECT_EQ(dsu.components(), 4U);
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(0, 2));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_TRUE(dsu.same(0, 3));
  EXPECT_EQ(dsu.component_size(3), 4U);
  EXPECT_EQ(dsu.components(), 3U);
}

TEST(DSUTest, TransitiveChains) {
  DSU dsu(100);
  for (std::uint32_t i = 0; i + 1 < 100; ++i) {
    dsu.unite(i, i + 1);
  }
  EXPECT_EQ(dsu.components(), 1U);
  EXPECT_TRUE(dsu.same(0, 99));
  EXPECT_EQ(dsu.component_size(50), 100U);
}

TEST(DSUTest, RangeChecked) {
  DSU dsu(3);
  EXPECT_THROW((void)dsu.find(3), std::invalid_argument);
}

TEST(DSUTest, ResetRestoresSingletons) {
  DSU dsu(4);
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  dsu.reset();
  EXPECT_EQ(dsu.components(), 4U);
  EXPECT_FALSE(dsu.same(0, 1));
}

TEST(DSUTest, SelfUniteIsNoop) {
  DSU dsu(3);
  EXPECT_FALSE(dsu.unite(1, 1));
  EXPECT_EQ(dsu.components(), 3U);
}

}  // namespace
}  // namespace mineq::graph
