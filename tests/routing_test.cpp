#include "min/routing.hpp"

#include <gtest/gtest.h>

#include "min/banyan.hpp"
#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(RoutingTest, FindRouteFollowsArcs) {
  const MIDigraph g = baseline_network(4);
  for (std::uint32_t src = 0; src < 8; ++src) {
    for (std::uint32_t dst = 0; dst < 8; ++dst) {
      const auto route = find_route(g, src, dst);
      ASSERT_TRUE(route.has_value());
      ASSERT_EQ(route->cells.size(), 4U);
      ASSERT_EQ(route->ports.size(), 3U);
      EXPECT_EQ(route->cells.front(), src);
      EXPECT_EQ(route->cells.back(), dst);
      for (int s = 0; s < 3; ++s) {
        const auto children =
            g.children(s, route->cells[static_cast<std::size_t>(s)]);
        EXPECT_EQ(route->cells[static_cast<std::size_t>(s + 1)],
                  children[route->ports[static_cast<std::size_t>(s)]]);
      }
    }
  }
}

TEST(RoutingTest, FindRouteDetectsUnreachable) {
  // Identity chains: only the same cell index is reachable.
  std::vector<perm::IndexPermutation> seq(
      3, perm::IndexPermutation::identity(4));
  const MIDigraph g = network_from_pipids(seq);
  EXPECT_TRUE(find_route(g, 0, 0).has_value());
  EXPECT_FALSE(find_route(g, 0, 1).has_value());
  EXPECT_THROW((void)find_route(g, 8, 0), std::invalid_argument);
}

TEST(RoutingTest, ClassicalNetworksHaveBitSchedules) {
  // "these permutations are associated to a very simple bit directed
  // routing" — every classical network admits a destination-bit schedule.
  for (int n = 2; n <= 6; ++n) {
    for (NetworkKind kind : all_network_kinds()) {
      const MIDigraph g = build_network(kind, n);
      const auto schedule = find_bit_schedule(g);
      ASSERT_TRUE(schedule.has_value())
          << network_name(kind) << " n=" << n;
      EXPECT_TRUE(verify_bit_schedule(g, *schedule));
    }
  }
}

TEST(RoutingTest, BaselineScheduleConsumesHighBitsFirst) {
  // Baseline's stage-s connection forces destination bit w-s-1; the
  // schedule must read the destination MSB-first with no inversions.
  const MIDigraph g = baseline_network(5);
  const auto schedule = find_bit_schedule(g);
  ASSERT_TRUE(schedule.has_value());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(schedule->bit[static_cast<std::size_t>(s)], 4 - 1 - s);
    EXPECT_EQ(schedule->invert[static_cast<std::size_t>(s)], 0U);
  }
}

TEST(RoutingTest, ScheduleMatchesUniquePaths) {
  const MIDigraph g = build_network(NetworkKind::kOmega, 5);
  const auto schedule = find_bit_schedule(g);
  ASSERT_TRUE(schedule.has_value());
  for (std::uint32_t src = 0; src < 16; src += 3) {
    for (std::uint32_t dst = 0; dst < 16; dst += 5) {
      const Route scheduled = route_with_schedule(g, *schedule, src, dst);
      const auto unique = find_route(g, src, dst);
      ASSERT_TRUE(unique.has_value());
      EXPECT_EQ(scheduled.cells, unique->cells);
      EXPECT_EQ(scheduled.ports, unique->ports);
    }
  }
}

TEST(RoutingTest, RandomPipidNetworksHaveSchedules) {
  MINEQ_SEEDED_RNG(rng, 149);
  for (int trial = 0; trial < 5; ++trial) {
    const MIDigraph g = test::random_banyan_pipid(5, rng);
    const auto schedule = find_bit_schedule(g);
    ASSERT_TRUE(schedule.has_value()) << "trial=" << trial;
    EXPECT_TRUE(verify_bit_schedule(g, *schedule));
  }
}

TEST(RoutingTest, NonBanyanHasNoSchedule) {
  std::vector<perm::IndexPermutation> seq(
      3, perm::IndexPermutation::identity(4));
  const MIDigraph g = network_from_pipids(seq);
  EXPECT_FALSE(find_bit_schedule(g).has_value());
}

TEST(RoutingTest, ScheduleArityValidated) {
  const MIDigraph g = baseline_network(3);
  BitSchedule bad;
  bad.bit = {0};
  bad.invert = {0};
  EXPECT_THROW((void)route_with_schedule(g, bad, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mineq::min
