/// \file bench_workload.cpp
/// \brief Workload-seam overhead: the open-loop path must stay at the
/// pre-seam cost (the devirtualized SyntheticSource fast path reaches
/// the same instantiations the goldens pin — BENCH_sim/BENCH_wormhole
/// track that), and the closed-loop / trace-replay sources' costs are
/// measured per discipline here.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "util/format.hpp"
#include "workload/spec.hpp"

#include "bench_main.hpp"

namespace {

using mineq::sim::Engine;
using mineq::sim::Pattern;
using mineq::sim::SimConfig;
using mineq::sim::SwitchingMode;
namespace workload = mineq::workload;

SimConfig bench_config(SwitchingMode mode) {
  SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.7;
  config.warmup_cycles = 50;
  config.measure_cycles = 400;
  config.seed = 21;
  config.packet_length = 3;
  config.lanes = 2;
  config.lane_depth = 2;
  return config;
}

/// Record one open-loop run's accepted injections so the trace-replay
/// rows drive the fabric with a realistic (contention-shaped) load.
std::shared_ptr<const workload::TraceData> recorded_trace(
    const Engine& engine, SwitchingMode mode) {
  SimConfig config = bench_config(mode);
  config.workload.record = true;
  auto trace = std::make_shared<workload::TraceData>();
  trace->records = engine.run(Pattern::kUniform, config).workload_trace;
  return trace;
}

SimConfig workload_config(SwitchingMode mode, const workload::Spec& spec) {
  SimConfig config = bench_config(mode);
  config.workload = spec;
  return config;
}

double time_ms(const Engine& engine, const SimConfig& config, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < reps; ++i) {
    sink += engine.run(Pattern::kUniform, config).delivered;
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::milli>(t1 - t0).count() /
         static_cast<double>(reps);
}

}  // namespace

void print_report() {
  using namespace mineq;
  std::cout << "=== Workload-source overhead (omega n=8, per kind) ===\n\n";
  util::TablePrinter table({"mode", "workload", "ms/run", "vs open"});
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 8));
  constexpr int kReps = 5;
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    workload::Spec open;  // kOpen defaults
    workload::Spec closed;
    closed.kind = workload::Kind::kClosedLoop;
    closed.rr_window = 4;
    workload::Spec trace;
    trace.kind = workload::Kind::kTrace;
    trace.trace = recorded_trace(engine, mode);
    workload::Spec record = open;
    record.record = true;
    const std::pair<const char*, workload::Spec> rows[] = {
        {"open", open},
        {"closedloop", closed},
        {"trace", trace},
        {"open+record", record},
    };
    double open_ms = 0.0;
    for (const auto& [label, spec] : rows) {
      const double ms =
          time_ms(engine, workload_config(mode, spec), kReps);
      if (std::string(label) == "open") open_ms = ms;
      table.add_row({sim::switching_mode_name(mode), label,
                     util::fixed(ms, 2),
                     util::fixed(open_ms > 0.0 ? ms / open_ms : 1.0, 3)});
    }
  }
  std::cout << table.str()
            << "\n(\"open\" rides the devirtualized SyntheticSource fast "
               "path — the pre-seam cost gate is checked by "
               "bench_compare.py against BENCH_sim/BENCH_wormhole)\n\n";
}

// The tracked entries: one closed-loop and one trace-replay run per
// discipline, for bench_compare.py against the committed baselines.
static void BM_SafClosedLoop(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  SimConfig config = bench_config(SwitchingMode::kStoreAndForward);
  config.workload.kind = workload::Kind::kClosedLoop;
  config.workload.rr_window = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_SafClosedLoop)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_WormholeClosedLoop(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  SimConfig config = bench_config(SwitchingMode::kWormhole);
  config.workload.kind = workload::Kind::kClosedLoop;
  config.workload.rr_window = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_WormholeClosedLoop)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_SafTraceReplay(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  SimConfig config = bench_config(SwitchingMode::kStoreAndForward);
  config.workload.kind = workload::Kind::kTrace;
  config.workload.trace =
      recorded_trace(engine, SwitchingMode::kStoreAndForward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_SafTraceReplay)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_WormholeTraceReplay(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  SimConfig config = bench_config(SwitchingMode::kWormhole);
  config.workload.kind = workload::Kind::kTrace;
  config.workload.trace = recorded_trace(engine, SwitchingMode::kWormhole);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_WormholeTraceReplay)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);
