/// \file bench_fig4_pipid.cpp
/// \brief Figure 4: link labels and a PIPID permutation between stages.
///
/// Regenerates the figure's content — the n-bit link labels, a PIPID
/// (perfect shuffle) applied to them, and the induced cell-level
/// connection (f, g) — and benchmarks both derivations of the connection
/// (the paper's closed bit formula versus materializing the link
/// permutation).

#include <iostream>

#include "min/independence.hpp"
#include "min/labels.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

namespace {

using namespace mineq;

constexpr int kFigureStages = 4;

}  // namespace

void print_report() {
  const perm::IndexPermutation sigma = perm::perfect_shuffle(kFigureStages);
  std::cout << "=== Figure 4: link labels under the perfect shuffle (n="
            << kFigureStages << ") ===\n\n";
  util::TablePrinter links({"out-link y", "Lambda(y)", "target cell"});
  const std::uint64_t count = std::uint64_t{1} << kFigureStages;
  for (std::uint64_t y = 0; y < count; ++y) {
    const std::uint64_t z = sigma.apply(y);
    links.add_row({util::bit_tuple(y, kFigureStages),
                   util::bit_tuple(z, kFigureStages),
                   util::bit_tuple(z >> 1, kFigureStages - 1)});
  }
  std::cout << links.str() << '\n';

  const min::Connection conn = min::connection_from_pipid_formula(sigma);
  const auto info = min::pipid_stage_info(sigma);
  std::cout << "k = theta^{-1}(0) = " << info.k
            << " (port bit lands in link bit " << info.k
            << "); dropped cell bit: theta(0)-1 = "
            << info.dropped_input_bit - 1 << "\n";
  std::cout << "derived connection is independent: "
            << (min::is_independent(conn) ? "yes" : "no") << "\n\n";
  util::TablePrinter fg({"cell x", "f(x)", "g(x)"});
  for (std::uint32_t x = 0; x < conn.cells(); ++x) {
    fg.add_row({util::bit_tuple(x, kFigureStages - 1),
                util::bit_tuple(conn.f(x), kFigureStages - 1),
                util::bit_tuple(conn.g(x), kFigureStages - 1)});
  }
  std::cout << fg.str() << '\n';
}

static void BM_ConnectionFromFormula(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const perm::IndexPermutation sigma = perm::perfect_shuffle(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::connection_from_pipid_formula(sigma));
  }
  state.SetComplexityN(std::int64_t{1} << (n - 1));
}
BENCHMARK(BM_ConnectionFromFormula)->DenseRange(4, 18, 2)->Complexity();

static void BM_ConnectionFromLinkPermutation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const perm::IndexPermutation sigma = perm::perfect_shuffle(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::connection_from_pipid(sigma));
  }
}
BENCHMARK(BM_ConnectionFromLinkPermutation)->DenseRange(4, 18, 2);

static void BM_PipidRecognition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::SplitMix64 rng(5);
  const perm::Permutation p =
      perm::IndexPermutation::random(n, rng).induced();
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm::IndexPermutation::recognize(p));
  }
}
BENCHMARK(BM_PipidRecognition)->DenseRange(4, 16, 4);

static void BM_NetworkFromPipids(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<perm::IndexPermutation> seq(
      static_cast<std::size_t>(n - 1), perm::perfect_shuffle(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::network_from_pipids(seq));
  }
}
BENCHMARK(BM_NetworkFromPipids)->DenseRange(4, 16, 4);
