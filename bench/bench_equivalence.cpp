/// \file bench_equivalence.cpp
/// \brief The headline ablation: the paper's easy characterization versus
/// general-purpose isomorphism search for deciding Baseline equivalence.
///
/// The report prints the head-to-head series (who wins, by what factor);
/// the benchmark suite times each decision path across network sizes.

#include <chrono>
#include <functional>
#include <iostream>

#include "graph/isomorphism.hpp"
#include "min/baseline.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "min/properties.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

namespace {

using namespace mineq;

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

void print_report() {
  std::cout << "=== Easy characterization vs isomorphism search ===\n\n";
  util::TablePrinter table({"n", "cells", "easy check (s)",
                            "VF2 search (s)", "speedup"});
  util::SplitMix64 rng(31);
  for (int n = 3; n <= 8; ++n) {
    const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
    const min::MIDigraph base = min::baseline_network(n);
    bool easy_verdict = false;
    const double easy = seconds_of(
        [&] { easy_verdict = min::is_baseline_equivalent(g); });
    bool oracle_verdict = false;
    const double oracle = seconds_of([&] {
      oracle_verdict = graph::find_layered_isomorphism(g.to_layered(),
                                                       base.to_layered())
                           .has_value();
    });
    table.add_row({std::to_string(n),
                   std::to_string(g.cells_per_stage()),
                   util::fixed(easy, 6), util::fixed(oracle, 6),
                   easy > 0 ? util::fixed(oracle / easy, 1) + "x" : "-"});
    if (easy_verdict != oracle_verdict) {
      std::cout << "DISAGREEMENT at n=" << n << "!\n";
    }
  }
  std::cout << table.str()
            << "\n(the easy check also scales to sizes where the search is "
               "hopeless; see the suite below)\n\n";
}

static void BM_EasyCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::is_baseline_equivalent(g));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.cells_per_stage()));
}
BENCHMARK(BM_EasyCheck)->DenseRange(4, 14, 2)->Complexity();

static void BM_FlatWiringBuild(benchmark::State& state) {
  // Cost of flattening the image tables into the stage-packed IR — the
  // one-time price every FlatWiring consumer amortizes.
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::FlatWiring::from_digraph(g));
  }
}
BENCHMARK(BM_FlatWiringBuild)->DenseRange(4, 14, 2);

static void BM_EasyCheckPrebuiltWiring(benchmark::State& state) {
  // The characterization over an already-flattened wiring: what a sweep
  // or repeated classification pays per check once the IR is shared.
  const int n = static_cast<int>(state.range(0));
  const min::FlatWiring w = min::FlatWiring::from_digraph(
      min::build_network(min::NetworkKind::kOmega, n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::is_baseline_equivalent(w));
  }
}
BENCHMARK(BM_EasyCheckPrebuiltWiring)->DenseRange(4, 14, 2);

static void BM_EasyCheckPropertiesOnly(benchmark::State& state) {
  // P(1,*) + P(*,n) without the Banyan sweep: the near-linear core.
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    bool ok = min::satisfies_p1_star(g) && min::satisfies_p_star_n(g);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EasyCheckPropertiesOnly)->DenseRange(4, 18, 2);

static void BM_IndependenceFastPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::is_baseline_equivalent_via_independence(g));
  }
}
BENCHMARK(BM_IndependenceFastPath)->DenseRange(4, 14, 2);

static void BM_Vf2Search(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  const min::MIDigraph base = min::baseline_network(n);
  const auto layered_g = g.to_layered();
  const auto layered_base = base.to_layered();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::find_layered_isomorphism(layered_g, layered_base));
  }
}
BENCHMARK(BM_Vf2Search)->DenseRange(3, 8, 1);

static void BM_EquivalenceFullReport(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::SplitMix64 rng(77);
  const min::MIDigraph g = min::random_independent_network(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::check_baseline_equivalence(g));
  }
}
BENCHMARK(BM_EquivalenceFullReport)->DenseRange(4, 12, 2);
