/// \file bench_fig1_baseline.cpp
/// \brief Figure 1: the 4-stage Baseline network and its MI-digraph.
///
/// Regenerates the figure as ASCII art plus the adjacency listing, checks
/// the left-recursive construction, and benchmarks baseline construction
/// and structural verification across sizes.

#include <iostream>

#include "graph/render.hpp"
#include "min/banyan.hpp"
#include "min/baseline.hpp"
#include "min/labels.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

namespace {

using namespace mineq;

constexpr int kFigureStages = 4;

}  // namespace

void print_report() {
  const min::MIDigraph g = min::baseline_network(kFigureStages);
  std::cout << "=== Figure 1: " << kFigureStages
            << "-stage Baseline MI-digraph ===\n\n";
  graph::AsciiOptions options;
  for (int s = 0; s < kFigureStages; ++s) {
    options.labels.push_back(min::stage_label_strings(kFigureStages));
  }
  std::cout << graph::render_ascii(g.to_layered(), options) << '\n';
  std::cout << "Adjacency (stage:cell -> children):\n"
            << graph::render_adjacency(g.to_layered()) << '\n';
  std::cout << "left-recursive construction verified: "
            << (min::is_left_recursive_baseline(g) ? "yes" : "no") << "\n";
  std::cout << "banyan: " << (min::is_banyan(g) ? "yes" : "no") << "\n\n";
}

static void BM_BaselineClosedForm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::baseline_network(n));
  }
  state.SetComplexityN(state.range(0));
  state.counters["cells"] =
      static_cast<double>(min::cells_per_stage(n));
}
BENCHMARK(BM_BaselineClosedForm)->DenseRange(4, 18, 2)->Complexity();

static void BM_BaselineRecursive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::baseline_network_recursive(n));
  }
}
BENCHMARK(BM_BaselineRecursive)->DenseRange(4, 18, 2);

static void BM_LeftRecursiveVerify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::baseline_network(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::is_left_recursive_baseline(g));
  }
}
BENCHMARK(BM_LeftRecursiveVerify)->DenseRange(4, 10, 2);

static void BM_BaselineReverse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::baseline_network(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.reverse());
  }
}
BENCHMARK(BM_BaselineReverse)->DenseRange(4, 16, 4);
