/// \file bench_iso_synthesis.cpp
/// \brief Explicit isomorphism construction: the affine synthesizer
/// (GF(2) elimination, polynomial time) versus backtracking search.

#include <iostream>

#include "graph/isomorphism.hpp"
#include "min/affine_iso.hpp"
#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

void print_report() {
  using namespace mineq;
  std::cout << "=== Affine isomorphism synthesis across sizes ===\n\n";
  util::TablePrinter table({"n", "unknowns", "found", "verified"});
  util::SplitMix64 rng(51);
  for (int n = 3; n <= 10; ++n) {
    const min::MIDigraph omega =
        min::build_network(min::NetworkKind::kOmega, n);
    const min::MIDigraph base = min::baseline_network(n);
    const auto iso = min::synthesize_affine_isomorphism(omega, base, rng);
    const int w = n - 1;
    table.add_row(
        {std::to_string(n),
         std::to_string(w * w + (n - 1) * (w + 1)),
         iso.has_value() ? "yes" : "no",
         iso.has_value() && min::verify_affine_isomorphism(omega, base, *iso)
             ? "yes"
             : "no"});
  }
  std::cout << table.str() << '\n';
}

static void BM_AffineSynthesisOmegaBaseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto omega =
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n);
  const auto base = mineq::min::baseline_network(n);
  mineq::util::SplitMix64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::min::synthesize_affine_isomorphism(omega, base, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AffineSynthesisOmegaBaseline)->DenseRange(3, 13, 2);

static void BM_AffineSynthesisRandomPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(9);
  const auto g = mineq::min::random_pipid_network(n, rng);
  const auto h = mineq::min::random_pipid_network(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::min::synthesize_affine_isomorphism(g, h, rng));
  }
}
BENCHMARK(BM_AffineSynthesisRandomPair)->DenseRange(3, 13, 2);

static void BM_BacktrackingSearchSameTask(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto omega =
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n)
          .to_layered();
  const auto base = mineq::min::baseline_network(n).to_layered();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::graph::find_layered_isomorphism(omega, base));
  }
}
BENCHMARK(BM_BacktrackingSearchSameTask)->DenseRange(3, 8, 1);

static void BM_VerifyAffineIso(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto omega =
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n);
  const auto base = mineq::min::baseline_network(n);
  mineq::util::SplitMix64 rng(3);
  const auto iso = mineq::min::synthesize_affine_isomorphism(omega, base, rng);
  if (!iso.has_value()) {
    state.SkipWithError("synthesis failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::min::verify_affine_isomorphism(omega, base, *iso));
  }
}
BENCHMARK(BM_VerifyAffineIso)->DenseRange(3, 13, 2);

static void BM_WlRefinement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto omega =
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n)
          .to_layered();
  const auto base = mineq::min::baseline_network(n).to_layered();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::graph::wl_refine(omega, base));
  }
}
BENCHMARK(BM_WlRefinement)->DenseRange(3, 9, 2);
