/// \file bench_routing.cpp
/// \brief Bit-directed routing: schedule recovery, scheduled routing
/// versus generic unique-path extraction, and admissibility testing.

#include <iostream>

#include "min/networks.hpp"
#include "min/routing.hpp"
#include "sim/perm_routing.hpp"
#include "sim/traffic.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

void print_report() {
  using namespace mineq;
  const int n = 5;
  std::cout << "=== Destination-bit schedules of the classical networks (n="
            << n << ") ===\n\n";
  util::TablePrinter table({"network", "stage bits (d_i = dest bit i)"});
  for (min::NetworkKind kind : min::all_network_kinds()) {
    const min::MIDigraph g = min::build_network(kind, n);
    const auto schedule = min::find_bit_schedule(g);
    std::string bits = "(none)";
    if (schedule.has_value()) {
      bits.clear();
      for (std::size_t s = 0; s < schedule->bit.size(); ++s) {
        if (s != 0) bits += ' ';
        bits += 'd' + std::to_string(schedule->bit[s]);
      }
    }
    table.add_row({min::network_name(kind), bits});
  }
  std::cout << table.str() << '\n';
}

static void BM_FindRoute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = mineq::min::build_network(mineq::min::NetworkKind::kOmega, n);
  std::uint32_t pair = 0;
  const std::uint32_t cells = g.cells_per_stage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::min::find_route(g, pair % cells, (pair * 7 + 3) % cells));
    ++pair;
  }
}
BENCHMARK(BM_FindRoute)->DenseRange(4, 14, 2);

static void BM_RouteWithSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = mineq::min::build_network(mineq::min::NetworkKind::kOmega, n);
  // Omega's schedule is known in closed form (destination MSB-first; see
  // routing_test) — building it directly keeps the fixture O(n) where the
  // generic all-pairs recovery would dominate the benchmark at scale.
  mineq::min::BitSchedule schedule;
  for (int s = 0; s + 1 < n; ++s) {
    schedule.bit.push_back(n - 2 - s);
    schedule.invert.push_back(0);
  }
  std::uint32_t pair = 0;
  const std::uint32_t cells = g.cells_per_stage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::route_with_schedule(
        g, schedule, pair % cells, (pair * 7 + 3) % cells));
    ++pair;
  }
}
BENCHMARK(BM_RouteWithSchedule)->DenseRange(4, 14, 2);

static void BM_FindBitSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g =
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::find_bit_schedule(g));
  }
}
BENCHMARK(BM_FindBitSchedule)->DenseRange(3, 9, 1);

static void BM_IsAdmissibleRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = mineq::min::build_network(mineq::min::NetworkKind::kOmega, n);
  mineq::util::SplitMix64 rng(71);
  const auto pi =
      mineq::perm::Permutation::random(std::size_t{1} << n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::sim::is_admissible(g, pi));
  }
}
BENCHMARK(BM_IsAdmissibleRandom)->DenseRange(3, 9, 1);

static void BM_OmegaWindowAdmissible(benchmark::State& state) {
  // O(N n) closed-form admissibility for Omega vs the general router.
  const int n = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(71);
  const auto pi =
      mineq::perm::Permutation::random(std::size_t{1} << n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::sim::omega_window_admissible(pi, n));
  }
}
BENCHMARK(BM_OmegaWindowAdmissible)->DenseRange(3, 15, 2);

static void BM_AdmissibleFractionEstimate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = mineq::min::build_network(mineq::min::NetworkKind::kOmega, n);
  mineq::util::SplitMix64 rng(73);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::sim::admissible_fraction_estimate(g, 64, rng));
  }
}
BENCHMARK(BM_AdmissibleFractionEstimate)->DenseRange(3, 7, 1);
