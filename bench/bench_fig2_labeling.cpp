/// \file bench_fig2_labeling.cpp
/// \brief Figure 2: the binary labeling of an MI-digraph's cells.
///
/// Regenerates the per-stage label tuples for the figure's 4-stage
/// network and benchmarks the label machinery (tuple formatting, BitVec
/// group operations, parsing) that underlies every connection-level
/// algorithm.

#include <iostream>

#include "gf2/bitvec.hpp"
#include "min/labels.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

namespace {

using namespace mineq;

constexpr int kFigureStages = 4;

}  // namespace

void print_report() {
  std::cout << "=== Figure 2: labeling of an MI-digraph (n="
            << kFigureStages << ") ===\n\n";
  const auto labels = min::stage_label_strings(kFigureStages);
  util::TablePrinter table({"cell", "label (x3,x2,x1)"});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    table.add_row({std::to_string(i), labels[i]});
  }
  std::cout << table.str() << '\n';
  std::cout << "Each stage carries the same labels 0.."
            << min::cells_per_stage(kFigureStages) - 1
            << "; arcs go left to right.\n\n";
}

static void BM_TupleFormatting(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::util::bit_tuple(x, width));
    x = (x + 1) & mask;
  }
}
BENCHMARK(BM_TupleFormatting)->DenseRange(3, 23, 5);

static void BM_BitVecXor(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const gf2::BitVec a((std::uint64_t{1} << width) - 1, width);
  gf2::BitVec acc = gf2::BitVec::zero(width);
  for (auto _ : state) {
    acc ^= a;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_BitVecXor)->DenseRange(3, 23, 5);

static void BM_BitVecParse(benchmark::State& state) {
  const std::string text = "(1,0,1,1,0,1,0,1)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf2::BitVec::parse(text));
  }
}
BENCHMARK(BM_BitVecParse);

static void BM_StageLabelStrings(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::stage_label_strings(n));
  }
}
BENCHMARK(BM_StageLabelStrings)->DenseRange(4, 16, 4);
