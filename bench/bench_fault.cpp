/// \file bench_fault.cpp
/// \brief Fault-injection benchmarks: the cost of the masked hot path
/// relative to the unmasked fast path, fault-model/mask construction,
/// and survivor-topology classification.
///
/// The headline pair is {Saf,Wormhole}{NoMask,EmptyMask}: an all-clear
/// FaultMask must dispatch to the same unfaulted policy instantiation as
/// a plain run, so EmptyMask is pinned at <5% over NoMask (they execute
/// byte-identical loops; only the dispatch differs). The Masked variants
/// show what degraded-mode routing actually costs at a given fault rate.

#include <iostream>

#include "fault/fault_model.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

namespace {

using mineq::fault::FaultKind;
using mineq::fault::FaultMask;
using mineq::fault::FaultSpec;

mineq::sim::SimConfig bench_config(mineq::sim::SwitchingMode mode) {
  mineq::sim::SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.8;
  config.packet_length = 4;
  config.lanes = 2;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  config.seed = 7;
  return config;
}

}  // namespace

void print_report() {
  using namespace mineq;
  std::cout << "=== Degradation under uniform link faults (Omega, n=6) ===\n\n";
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 6));
  sim::SimConfig config = bench_config(sim::SwitchingMode::kStoreAndForward);
  config.measure_cycles = 1000;
  util::TablePrinter table({"fault rate", "surviving", "full access",
                            "delivered frac", "dropped", "misdelivered"});
  for (const double rate : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    const FaultMask mask = fault::build_fault_mask(
        engine.wiring(),
        FaultSpec{rate == 0.0 ? FaultKind::kNone : FaultKind::kRandomLinks,
                  rate, 17});
    const auto survivor = min::classify_faulted(engine.wiring(), mask);
    const sim::SimResult r =
        engine.run(sim::Pattern::kUniform, config, &mask);
    table.add_row({util::fixed(rate, 2),
                   std::to_string(survivor.surviving_arcs),
                   survivor.full_access ? "yes" : "no",
                   util::fixed(r.delivered_fraction(), 3),
                   std::to_string(r.packets_dropped_faulted),
                   std::to_string(r.packets_misdelivered)});
  }
  std::cout << table.str()
            << "\n(any single dead arc already breaks full access — the "
               "banyan has unique paths —\nbut the delivered fraction "
               "degrades gracefully via sibling-port detours)\n\n";
}

static void BM_FaultSafNoMask(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const auto config = bench_config(mineq::sim::SwitchingMode::kStoreAndForward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(mineq::sim::Pattern::kUniform, config));
  }
}
BENCHMARK(BM_FaultSafNoMask)->DenseRange(5, 9, 2);

static void BM_FaultSafEmptyMask(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const FaultMask empty(engine.wiring());
  const auto config = bench_config(mineq::sim::SwitchingMode::kStoreAndForward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config, &empty));
  }
}
BENCHMARK(BM_FaultSafEmptyMask)->DenseRange(5, 9, 2);

static void BM_FaultSafMasked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const FaultMask mask = mineq::fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.05, 17});
  const auto config = bench_config(mineq::sim::SwitchingMode::kStoreAndForward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config, &mask));
  }
}
BENCHMARK(BM_FaultSafMasked)->DenseRange(5, 9, 2);

static void BM_FaultWormholeNoMask(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const auto config = bench_config(mineq::sim::SwitchingMode::kWormhole);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(mineq::sim::Pattern::kUniform, config));
  }
}
BENCHMARK(BM_FaultWormholeNoMask)->DenseRange(5, 9, 2);

static void BM_FaultWormholeEmptyMask(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const FaultMask empty(engine.wiring());
  const auto config = bench_config(mineq::sim::SwitchingMode::kWormhole);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config, &empty));
  }
}
BENCHMARK(BM_FaultWormholeEmptyMask)->DenseRange(5, 9, 2);

static void BM_FaultWormholeMasked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const FaultMask mask = mineq::fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.05, 17});
  const auto config = bench_config(mineq::sim::SwitchingMode::kWormhole);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config, &mask));
  }
}
BENCHMARK(BM_FaultWormholeMasked)->DenseRange(5, 9, 2);

static void BM_BuildFaultMask(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto w = mineq::min::FlatWiring::from_digraph(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const FaultSpec spec{FaultKind::kRandomLinks, 0.05, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::fault::build_fault_mask(w, spec));
  }
}
BENCHMARK(BM_BuildFaultMask)->DenseRange(6, 12, 3);

static void BM_ClassifyFaulted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto w = mineq::min::FlatWiring::from_digraph(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  const FaultMask mask = mineq::fault::build_fault_mask(
      w, FaultSpec{FaultKind::kRandomLinks, 0.05, 17});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::classify_faulted(w, mask));
  }
}
BENCHMARK(BM_ClassifyFaulted)->DenseRange(6, 10, 2);
