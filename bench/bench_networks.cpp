/// \file bench_networks.cpp
/// \brief The six classical networks: construction cost and the full
/// pairwise equivalence matrix (the closing corollary as a benchmark).

#include <iostream>

#include "min/banyan.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

void print_report() {
  using namespace mineq;
  const int n = 6;
  std::cout << "=== Six classical networks at n=" << n
            << ": pairwise equivalence ===\n\n";
  const auto& kinds = min::all_network_kinds();
  std::vector<min::MIDigraph> nets;
  for (min::NetworkKind kind : kinds) {
    nets.push_back(min::build_network(kind, n));
  }
  std::vector<std::string> header = {"equivalent?"};
  for (min::NetworkKind kind : kinds) {
    header.push_back(min::network_name(kind).substr(0, 4));
  }
  util::TablePrinter matrix(header);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    std::vector<std::string> row = {min::network_name(kinds[i])};
    for (std::size_t j = 0; j < nets.size(); ++j) {
      row.push_back(min::are_topologically_equivalent(nets[i], nets[j])
                        ? "yes"
                        : "NO");
    }
    matrix.add_row(std::move(row));
  }
  std::cout << matrix.str() << '\n';
}

static void BM_BuildNetwork(benchmark::State& state) {
  const auto kind = static_cast<mineq::min::NetworkKind>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::build_network(kind, n));
  }
  state.SetLabel(mineq::min::network_name(kind));
}
BENCHMARK(BM_BuildNetwork)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {8, 12, 16}});

static void BM_PairwiseEquivalenceMatrix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<mineq::min::MIDigraph> nets;
  for (mineq::min::NetworkKind kind : mineq::min::all_network_kinds()) {
    nets.push_back(mineq::min::build_network(kind, n));
  }
  for (auto _ : state) {
    bool all = true;
    for (const auto& g : nets) {
      all = all && mineq::min::is_baseline_equivalent(g);
    }
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_PairwiseEquivalenceMatrix)->DenseRange(4, 12, 2);

static void BM_BanyanCheckClassical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g =
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::is_banyan(g));
  }
  state.SetComplexityN(std::int64_t{1} << (n - 1));
}
BENCHMARK(BM_BanyanCheckClassical)->DenseRange(4, 12, 2)->Complexity();

static void BM_BanyanDoubling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g =
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::is_banyan_doubling(g));
  }
}
BENCHMARK(BM_BanyanDoubling)->DenseRange(4, 12, 2);

static void BM_BanyanParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g =
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::is_banyan(g, /*threads=*/2));
  }
}
BENCHMARK(BM_BanyanParallel)->DenseRange(8, 12, 2);

static void BM_RandomPipidNetwork(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(61);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::random_pipid_network(n, rng));
  }
}
BENCHMARK(BM_RandomPipidNetwork)->DenseRange(4, 12, 4);
