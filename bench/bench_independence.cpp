/// \file bench_independence.cpp
/// \brief Ablation: independence testing by the paper's definition
/// (O(N^2)) versus the structural linear-form test (O(N)), plus
/// Proposition 1's reverse construction and orientation recovery.

#include <iostream>

#include "min/connection.hpp"
#include "min/independence.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

void print_report() {
  using namespace mineq;
  std::cout << "=== Independence test: definition vs structure ===\n\n";
  std::cout << "Both tests agree on every instance (cross-validated in the "
               "test suite);\nthe structural test runs in O(N) versus the "
               "definition's O(N^2):\n\n";
  util::TablePrinter table({"width", "cells", "verdict"});
  util::SplitMix64 rng(41);
  for (int w = 2; w <= 10; w += 2) {
    const min::Connection conn =
        min::Connection::random_independent_case2(w, rng);
    table.add_row({std::to_string(w),
                   std::to_string(std::uint64_t{1} << w),
                   min::is_independent(conn) ==
                           min::is_independent_definition(conn)
                       ? "agree"
                       : "DISAGREE"});
  }
  std::cout << table.str() << '\n';
}

static void BM_IndependenceDefinition(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(7);
  const auto conn = mineq::min::Connection::random_independent_case2(w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::is_independent_definition(conn));
  }
  state.SetComplexityN(std::int64_t{1} << w);
}
BENCHMARK(BM_IndependenceDefinition)->DenseRange(2, 12, 2)->Complexity();

static void BM_IndependenceStructural(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(7);
  const auto conn = mineq::min::Connection::random_independent_case2(w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::is_independent(conn));
  }
  state.SetComplexityN(std::int64_t{1} << w);
}
BENCHMARK(BM_IndependenceStructural)->DenseRange(2, 20, 2)->Complexity();

static void BM_IndependenceStructuralNegative(benchmark::State& state) {
  // Random non-independent connections: the structural test rejects after
  // the first recurrence violation, typically very early.
  const int w = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(11);
  const auto conn = mineq::min::Connection::random_valid(w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::is_independent(conn));
  }
}
BENCHMARK(BM_IndependenceStructuralNegative)->DenseRange(2, 20, 2);

static void BM_ReverseIndependent(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(13);
  const auto conn = mineq::min::Connection::random_independent_case2(w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conn.reverse_independent());
  }
}
BENCHMARK(BM_ReverseIndependent)->DenseRange(2, 16, 2);

static void BM_OrientIndependent(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(17);
  auto conn = mineq::min::Connection::random_independent_case1(w, rng);
  // Scramble the orientation.
  std::vector<std::uint32_t> f = conn.f_table();
  std::vector<std::uint32_t> g = conn.g_table();
  for (std::uint32_t x = 0; x < conn.cells(); ++x) {
    if (rng.chance(1, 2)) std::swap(f[x], g[x]);
  }
  const mineq::min::Connection scrambled(f, g, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::orient_independent(scrambled));
  }
}
BENCHMARK(BM_OrientIndependent)->DenseRange(2, 12, 2);

static void BM_BetaMap(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  mineq::util::SplitMix64 rng(19);
  const auto conn = mineq::min::Connection::random_independent_case2(w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::beta_map(conn));
  }
}
BENCHMARK(BM_BetaMap)->DenseRange(2, 16, 2);
