/// \file bench_sim.cpp
/// \brief Packet-level simulation of the classical networks: saturation
/// throughput series (the classic MIN evaluation curves) and simulator
/// performance.

#include <iostream>

#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

void print_report() {
  using namespace mineq;
  std::cout << "=== Saturation throughput of the classical networks ===\n\n";
  sim::SimConfig config;
  config.injection_rate = 1.0;
  config.warmup_cycles = 200;
  config.measure_cycles = 1500;
  config.seed = 12;

  util::TablePrinter table({"n", "terminals", "network", "uniform",
                            "shuffle", "complement"});
  for (int n : {4, 6}) {
    for (min::NetworkKind kind :
         {min::NetworkKind::kOmega, min::NetworkKind::kBaseline,
          min::NetworkKind::kIndirectBinaryCube}) {
      const sim::Engine engine(min::build_network(kind, n));
      const double uniform =
          engine.run(sim::Pattern::kUniform, config).throughput;
      const double shuffle =
          engine.run(sim::Pattern::kShuffle, config).throughput;
      const double complement =
          engine.run(sim::Pattern::kComplement, config).throughput;
      table.add_row({std::to_string(n),
                     std::to_string(std::uint64_t{1} << n),
                     min::network_name(kind), util::fixed(uniform, 3),
                     util::fixed(shuffle, 3), util::fixed(complement, 3)});
    }
  }
  std::cout << table.str()
            << "\n(uniform saturation decreases with stage count — the "
               "classic delta-network curve)\n\n";
}

static void BM_SimUniform(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  mineq::sim::SimConfig config;
  config.injection_rate = 0.8;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const auto result = engine.run(mineq::sim::Pattern::kUniform, config);
    delivered += result.delivered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimUniform)->DenseRange(3, 9, 2);

static void BM_SimHotspot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, n));
  mineq::sim::SimConfig config;
  config.injection_rate = 0.5;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kHotSpot, config));
  }
}
BENCHMARK(BM_SimHotspot)->DenseRange(3, 7, 2);

static void BM_EngineConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g =
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::sim::Engine(g));
  }
}
BENCHMARK(BM_EngineConstruction)->DenseRange(3, 7, 2);
