/// \file bench_obs.cpp
/// \brief Observability overhead: the compiled-in-but-off dispatch must
/// be free (it reaches the same kObs=false instantiations the goldens
/// pin), and each collector's enabled cost is measured per discipline.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "min/networks.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

namespace {

using mineq::sim::Engine;
using mineq::sim::Pattern;
using mineq::sim::SimConfig;
using mineq::sim::SwitchingMode;

SimConfig bench_config(SwitchingMode mode) {
  SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.7;
  config.warmup_cycles = 50;
  config.measure_cycles = 400;
  config.seed = 21;
  config.packet_length = 3;
  config.lanes = 2;
  config.lane_depth = 2;
  return config;
}

mineq::obs::ObsConfig collectors(bool probes, bool flows,
                                 std::uint64_t trace) {
  mineq::obs::ObsConfig obs;
  obs.probe_stride = probes ? 50 : 0;
  obs.flow_stats = flows;
  obs.trace_sample = trace;
  return obs;
}

double time_ms(const Engine& engine, const SimConfig& config, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < reps; ++i) {
    sink += engine.run(Pattern::kUniform, config).delivered;
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::milli>(t1 - t0).count() /
         static_cast<double>(reps);
}

}  // namespace

void print_report() {
  using namespace mineq;
  std::cout << "=== Observability overhead (omega n=8, per collector) "
               "===\n\n";
  util::TablePrinter table({"mode", "collectors", "ms/run", "vs off"});
  const Engine engine(min::build_network(min::NetworkKind::kOmega, 8));
  constexpr int kReps = 5;
  struct Row {
    const char* label;
    bool probes;
    bool flows;
    std::uint64_t trace;
  };
  const Row rows[] = {
      {"off", false, false, 0},       {"probes", true, false, 0},
      {"flows", false, true, 0},      {"trace 1/64", false, false, 64},
      {"all", true, true, 64},
  };
  for (const SwitchingMode mode :
       {SwitchingMode::kStoreAndForward, SwitchingMode::kWormhole}) {
    double off_ms = 0.0;
    for (const Row& row : rows) {
      SimConfig config = bench_config(mode);
      config.obs = collectors(row.probes, row.flows, row.trace);
      const double ms = time_ms(engine, config, kReps);
      if (std::string(row.label) == "off") off_ms = ms;
      table.add_row({sim::switching_mode_name(mode), row.label,
                     util::fixed(ms, 2),
                     util::fixed(off_ms > 0.0 ? ms / off_ms : 1.0, 3)});
    }
  }
  std::cout << table.str()
            << "\n(\"off\" dispatches to the kObs=false instantiations — "
               "the acceptance gate is <3% vs the pre-obs baselines, "
               "checked by bench_compare.py against BENCH_sim/"
               "BENCH_wormhole)\n\n";
}

// The compiled-in-but-off cost for each discipline: these two are the
// entries bench_compare.py tracks against the committed baselines.
static void BM_SafObsOff(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  const SimConfig config = bench_config(SwitchingMode::kStoreAndForward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_SafObsOff)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_WormholeObsOff(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  const SimConfig config = bench_config(SwitchingMode::kWormhole);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_WormholeObsOff)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_SafObsAll(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  SimConfig config = bench_config(SwitchingMode::kStoreAndForward);
  config.obs = collectors(true, true, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_SafObsAll)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_WormholeObsAll(benchmark::State& state) {
  const Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega,
                                static_cast<int>(state.range(0))));
  SimConfig config = bench_config(SwitchingMode::kWormhole);
  config.obs = collectors(true, true, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Pattern::kUniform, config));
  }
}
BENCHMARK(BM_WormholeObsAll)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);
