/// \file bench_fig5_degenerate.cpp
/// \brief Figure 5: a stage whose PIPID has theta^{-1}(0) = 0.
///
/// Regenerates the degenerate stage (double links between cells), shows
/// that the Banyan property fails, and benchmarks the detection paths:
/// the O(n) stage-info check versus the full Banyan path-count sweep.

#include <iostream>

#include "graph/render.hpp"
#include "min/banyan.hpp"
#include "min/equivalence.hpp"
#include "min/labels.hpp"
#include "min/pipid.hpp"
#include "perm/standard.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

namespace {

using namespace mineq;

constexpr int kFigureStages = 4;

/// A PIPID fixing index 0 (hence degenerate): swap bits 1 and 2 only.
perm::IndexPermutation degenerate_pipid(int n) {
  return perm::IndexPermutation(
      perm::Permutation::from_cycles(static_cast<std::size_t>(n), {{1, 2}}));
}

min::MIDigraph network_with_degenerate_stage(int n) {
  std::vector<perm::IndexPermutation> seq;
  for (int s = 0; s < n - 1; ++s) {
    seq.push_back(s == (n - 1) / 2 ? degenerate_pipid(n)
                                   : perm::perfect_shuffle(n));
  }
  return min::network_from_pipids(seq);
}

}  // namespace

void print_report() {
  const perm::IndexPermutation degen = degenerate_pipid(kFigureStages);
  const min::Connection conn = min::connection_from_pipid_formula(degen);
  const auto info = min::pipid_stage_info(degen);

  std::cout << "=== Figure 5: stage with theta^{-1}(0) = 0 ===\n\n";
  std::cout << "theta = " << degen.theta().str()
            << ", k = " << info.k << " (degenerate)\n\n";
  util::TablePrinter table({"cell x", "f(x)", "g(x)", "double link"});
  for (std::uint32_t x = 0; x < conn.cells(); ++x) {
    table.add_row({util::bit_tuple(x, kFigureStages - 1),
                   util::bit_tuple(conn.f(x), kFigureStages - 1),
                   util::bit_tuple(conn.g(x), kFigureStages - 1),
                   conn.f(x) == conn.g(x) ? "yes" : "no"});
  }
  std::cout << table.str() << '\n';

  const min::MIDigraph g = network_with_degenerate_stage(kFigureStages);
  const auto failure = min::banyan_failure(g);
  std::cout << "network with this stage embedded: banyan="
            << (min::is_banyan(g) ? "yes" : "no");
  if (failure.has_value()) {
    std::cout << "  (witness: " << failure->path_count << " paths from cell "
              << failure->source << " to cell " << failure->sink << ")";
  }
  std::cout << "\nbaseline-equivalent: "
            << (min::is_baseline_equivalent(g) ? "yes" : "no") << "\n\n";
}

static void BM_DegenerateStageInfo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const perm::IndexPermutation degen = degenerate_pipid(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::pipid_stage_info(degen));
  }
}
BENCHMARK(BM_DegenerateStageInfo)->DenseRange(4, 20, 4);

static void BM_ParallelArcScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::Connection conn =
      min::connection_from_pipid_formula(degenerate_pipid(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conn.has_parallel_arcs());
  }
}
BENCHMARK(BM_ParallelArcScan)->DenseRange(4, 18, 2);

static void BM_BanyanRejectsDegenerate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = network_with_degenerate_stage(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::is_banyan(g));
  }
}
BENCHMARK(BM_BanyanRejectsDegenerate)->DenseRange(4, 12, 2);

static void BM_BanyanDoublingRejectsDegenerate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = network_with_degenerate_stage(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::is_banyan_doubling(g));
  }
}
BENCHMARK(BM_BanyanDoublingRejectsDegenerate)->DenseRange(4, 12, 2);
