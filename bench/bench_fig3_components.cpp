/// \file bench_fig3_components.cpp
/// \brief Figure 3 / Lemma 2: component structure of stage-suffix
/// subgraphs.
///
/// Regenerates the quantity the figure illustrates — every connected
/// component of (G)_{j..n} intersects each covered stage in the same
/// number of cells, and the component count is exactly 2^{j} (0-based) —
/// and benchmarks the incremental-DSU property checks that make the
/// paper's characterization "easy".

#include <iostream>

#include "min/networks.hpp"
#include "min/properties.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

namespace {

using namespace mineq;

constexpr int kFigureStages = 5;

}  // namespace

void print_report() {
  const min::MIDigraph g =
      min::build_network(min::NetworkKind::kOmega, kFigureStages);
  std::cout << "=== Figure 3 / Lemma 2: suffix components of the Omega("
            << kFigureStages << ") MI-digraph ===\n\n";
  util::TablePrinter table({"suffix (G)_{j..n-1}", "components",
                            "expected", "cells per stage per component"});
  for (int j = 0; j < kFigureStages; ++j) {
    const min::SuffixStructure s = min::suffix_component_structure(g, j);
    bool uniform = true;
    const std::size_t per_stage = s.intersections.empty()
                                      ? 0
                                      : s.intersections.front().front();
    for (const auto& component : s.intersections) {
      for (std::size_t count : component) {
        uniform = uniform && count == per_stage;
      }
    }
    table.add_row({"j=" + std::to_string(j),
                   std::to_string(s.component_count),
                   std::to_string(std::size_t{1} << j),
                   uniform ? std::to_string(per_stage) + " (uniform)"
                           : "NON-UNIFORM"});
  }
  std::cout << table.str() << '\n';
}

static void BM_SuffixProfile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::suffix_component_profile(g));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.num_nodes()));
}
BENCHMARK(BM_SuffixProfile)->DenseRange(4, 18, 2)->Complexity();

static void BM_PrefixProfile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::prefix_component_profile(g));
  }
}
BENCHMARK(BM_PrefixProfile)->DenseRange(4, 18, 2);

static void BM_SingleRangeCount(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::component_count_range(g, 1, n - 2));
  }
}
BENCHMARK(BM_SingleRangeCount)->DenseRange(4, 18, 2);

static void BM_SuffixStructureFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const min::MIDigraph g = min::build_network(min::NetworkKind::kOmega, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min::suffix_component_structure(g, 1));
  }
}
BENCHMARK(BM_SuffixStructureFull)->DenseRange(4, 14, 2);
