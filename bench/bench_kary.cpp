/// \file bench_kary.cpp
/// \brief Extension ablation: the generalized characterization over
/// r x r cells (the paper's closing remark), including the cost of the
/// checks as the radix grows.

#include <iostream>

#include "fault/fault_model.hpp"
#include "min/banyan.hpp"
#include "min/equivalence.hpp"
#include "min/flat_wiring.hpp"
#include "min/kary.hpp"
#include "sim/engine.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

void print_report() {
  using namespace mineq;
  std::cout << "=== Radix-r baseline networks and the generalized "
               "characterization ===\n\n";
  util::TablePrinter table({"radix", "stages", "cells", "banyan", "P(1,*)",
                            "P(*,n)", "equivalent"});
  for (int radix : {2, 3, 4, 5}) {
    for (int stages : {2, 3, 4}) {
      double cells = 1;
      for (int i = 0; i + 1 < stages; ++i) cells *= radix;
      if (cells > 4096) continue;
      const min::KaryMIDigraph g = min::kary_baseline(stages, radix);
      table.add_row({std::to_string(radix), std::to_string(stages),
                     std::to_string(g.cells_per_stage()),
                     min::kary_is_banyan(g) ? "yes" : "no",
                     min::kary_satisfies_p1_star(g) ? "yes" : "no",
                     min::kary_satisfies_p_star_n(g) ? "yes" : "no",
                     min::kary_is_baseline_equivalent(g) ? "yes" : "no"});
    }
  }
  std::cout << table.str() << '\n';

  // The FINDING: unaligned independent connections break equivalence at
  // r >= 3 even when Banyan.
  util::SplitMix64 rng(97);
  int banyan = 0;
  int equivalent = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<min::KaryConnection> conns;
    conns.push_back(min::KaryConnection::random_independent(3, 2, rng));
    conns.push_back(min::KaryConnection::random_independent(3, 2, rng));
    const min::KaryMIDigraph g(3, 3, std::move(conns));
    if (!min::kary_is_banyan(g)) continue;
    ++banyan;
    if (min::kary_is_baseline_equivalent(g)) ++equivalent;
  }
  std::cout << "radix-3 Banyan networks from UNALIGNED independent "
               "connections: "
            << equivalent << "/" << banyan
            << " baseline-equivalent (verbatim Theorem-3 generalization "
               "fails)\n";
  int aligned_banyan = 0;
  int aligned_equivalent = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<min::KaryConnection> conns;
    conns.push_back(
        min::KaryConnection::random_independent_aligned(3, 2, rng));
    conns.push_back(
        min::KaryConnection::random_independent_aligned(3, 2, rng));
    const min::KaryMIDigraph g(3, 3, std::move(conns));
    if (!min::kary_is_banyan(g)) continue;
    ++aligned_banyan;
    if (min::kary_is_baseline_equivalent(g)) ++aligned_equivalent;
  }
  std::cout << "radix-3 Banyan networks from ALIGNED independent "
               "connections:   "
            << aligned_equivalent << "/" << aligned_banyan
            << " baseline-equivalent (restriction restores the theorem)\n\n";
}

static void BM_KaryBaselineConstruction(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::kary_baseline(stages, radix));
  }
}
BENCHMARK(BM_KaryBaselineConstruction)
    ->ArgsProduct({{2, 3, 4, 8}, {3, 4, 5}});

static void BM_KaryEquivalenceCheck(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  const auto g = mineq::min::kary_omega(stages, radix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::kary_is_baseline_equivalent(g));
  }
}
BENCHMARK(BM_KaryEquivalenceCheck)->ArgsProduct({{2, 3, 4}, {3, 4, 5}});

static void BM_KaryIndependenceTest(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int digits = static_cast<int>(state.range(1));
  mineq::util::SplitMix64 rng(5);
  const auto conn = mineq::min::KaryConnection::random_independent_aligned(
      radix, digits, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conn.is_independent());
  }
}
BENCHMARK(BM_KaryIndependenceTest)->ArgsProduct({{2, 3, 4}, {2, 3, 4}});

// ---------------------------------------------------------------------------
// The k-ary FlatWiring IR and simulators: radix-2 vs radix-4 pairs over
// matched terminal counts (radix 2 at n stages vs radix 4 at n/2 + 1
// stages keeps the fabrics comparable in size).
// ---------------------------------------------------------------------------

static void BM_KaryFlatten(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  const auto g = mineq::min::kary_omega(stages, radix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::FlatWiring::from_kary(g));
  }
}
BENCHMARK(BM_KaryFlatten)->Args({2, 9})->Args({4, 5})->Args({8, 4});

static void BM_KaryWiringBanyanCheck(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  const auto w =
      mineq::min::FlatWiring::from_kary(mineq::min::kary_omega(stages, radix));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::is_banyan(w));
  }
}
// 256 cells each: 2^8 vs 4^4 vs (roughly) 8^3 = 512.
BENCHMARK(BM_KaryWiringBanyanCheck)->Args({2, 9})->Args({4, 5})->Args({8, 4});

static void BM_KaryWiringEquivalence(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  const auto w = mineq::min::FlatWiring::from_kary(
      mineq::min::kary_baseline(stages, radix));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::min::check_baseline_equivalence(w));
  }
}
BENCHMARK(BM_KaryWiringEquivalence)->Args({2, 9})->Args({4, 5})->Args({8, 4});

namespace {

mineq::sim::SimConfig kary_sim_config(mineq::sim::SwitchingMode mode) {
  mineq::sim::SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.6;
  config.packet_length = 4;
  config.lanes = 2;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  config.seed = 31;
  return config;
}

}  // namespace

/// Radix-2 (6 stages, 64 terminals) vs radix-4 (3 stages, 64 terminals):
/// the same terminal count through fatter, shallower switches.
static void BM_KarySimSaf(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  const mineq::sim::Engine engine(mineq::min::kary_omega(stages, radix));
  const auto config =
      kary_sim_config(mineq::sim::SwitchingMode::kStoreAndForward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config));
  }
}
BENCHMARK(BM_KarySimSaf)->Args({2, 6})->Args({4, 3})
    ->Unit(benchmark::kMillisecond);

static void BM_KarySimWormhole(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  const mineq::sim::Engine engine(mineq::min::kary_omega(stages, radix));
  const auto config = kary_sim_config(mineq::sim::SwitchingMode::kWormhole);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config));
  }
}
BENCHMARK(BM_KarySimWormhole)->Args({2, 6})->Args({4, 3})
    ->Unit(benchmark::kMillisecond);

static void BM_KarySimFaulted(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  const mineq::sim::Engine engine(mineq::min::kary_omega(stages, radix));
  const mineq::fault::FaultMask mask = mineq::fault::build_fault_mask(
      engine.wiring(),
      mineq::fault::FaultSpec{mineq::fault::FaultKind::kPartialPort, 0.2, 3});
  const auto config =
      kary_sim_config(mineq::sim::SwitchingMode::kStoreAndForward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config, &mask));
  }
}
BENCHMARK(BM_KarySimFaulted)->Args({2, 6})->Args({4, 3})
    ->Unit(benchmark::kMillisecond);
