/// \file bench_wormhole.cpp
/// \brief Flit-level wormhole switching: discipline comparison report
/// (store-and-forward vs wormhole across lane counts) and simulator
/// throughput benchmarks.

#include <iostream>

#include "exp/sweep.hpp"
#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "sim/wormhole.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

void print_report() {
  using namespace mineq;
  std::cout << "=== Wormhole vs store-and-forward (Omega, n=6, 4-flit "
               "packets) ===\n\n";
  const sim::Engine engine(
      min::build_network(min::NetworkKind::kOmega, 6));

  util::TablePrinter table({"mode", "lanes", "rate", "throughput",
                            "lat mean", "lat p99", "link util", "hol"});
  for (const double rate : {0.1, 0.5, 1.0}) {
    for (const std::size_t lanes : {std::size_t{0},  // 0 = store-and-forward
                                    std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
      sim::SimConfig config;
      config.injection_rate = rate;
      config.packet_length = 4;
      config.lane_depth = 4;
      config.warmup_cycles = 200;
      config.measure_cycles = 1500;
      config.seed = 12;
      if (lanes == 0) {
        config.mode = sim::SwitchingMode::kStoreAndForward;
      } else {
        config.mode = sim::SwitchingMode::kWormhole;
        config.lanes = lanes;
      }
      const sim::SimResult r = engine.run(sim::Pattern::kUniform, config);
      table.add_row({sim::switching_mode_name(config.mode),
                     lanes == 0 ? "-" : std::to_string(lanes),
                     util::fixed(rate, 1), util::fixed(r.throughput, 3),
                     util::fixed(r.latency.mean(), 1),
                     util::fixed(r.latency_histogram.quantile(0.99), 0),
                     util::fixed(r.link_utilization, 3),
                     util::with_commas(r.hol_blocking_cycles)});
    }
  }
  std::cout << table.str()
            << "\n(wormhole pipelines multi-flit packets: lower latency at "
               "low load;\n more lanes relieve head-of-line blocking at "
               "saturation)\n\n";
}

static void BM_WormholeUniform(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, n));
  mineq::sim::SimConfig config;
  config.mode = mineq::sim::SwitchingMode::kWormhole;
  config.injection_rate = 0.8;
  config.packet_length = 4;
  config.lanes = 2;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  std::uint64_t flits = 0;
  for (auto _ : state) {
    const auto result = engine.run(mineq::sim::Pattern::kUniform, config);
    flits += result.flits_delivered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["flits/s"] = benchmark::Counter(
      static_cast<double>(flits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WormholeUniform)->DenseRange(3, 9, 2);

static void BM_WormholeLanes(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, 6));
  mineq::sim::SimConfig config;
  config.mode = mineq::sim::SwitchingMode::kWormhole;
  config.injection_rate = 1.0;
  config.packet_length = 4;
  config.lanes = lanes;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kHotSpot, config));
  }
}
BENCHMARK(BM_WormholeLanes)->RangeMultiplier(2)->Range(1, 8);

static void BM_SweepGrid(benchmark::State& state) {
  // End-to-end cost of the experiment-sweep subsystem at a given thread
  // count (the grid is fixed: 2 networks x 2 modes x 5 rates).
  const auto threads = static_cast<std::size_t>(state.range(0));
  mineq::exp::SweepGrid grid;
  grid.networks = {mineq::min::NetworkKind::kOmega,
                   mineq::min::NetworkKind::kBaseline};
  grid.patterns = {mineq::sim::Pattern::kUniform};
  grid.modes = {mineq::sim::SwitchingMode::kStoreAndForward,
                mineq::sim::SwitchingMode::kWormhole};
  grid.lane_counts = {2};
  grid.rates = {0.2, 0.4, 0.6, 0.8, 1.0};
  grid.stages = 5;
  grid.base.packet_length = 4;
  grid.base.warmup_cycles = 50;
  grid.base.measure_cycles = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mineq::exp::run_sweep(grid, threads));
  }
}
BENCHMARK(BM_SweepGrid)->Arg(1)->Arg(4);

static void BM_SweepPerPointRebuild(benchmark::State& state) {
  // Ablation for the shared-wiring precompute: the same 20-point grid as
  // BM_SweepGrid/1, but constructing a fresh Engine (schedule search,
  // verification, FlatWiring flatten) for every grid point the way a
  // naive sweep would. The gap to BM_SweepGrid/1 is what sharing one
  // wiring per {network, stages} saves.
  mineq::sim::SimConfig base;
  base.packet_length = 4;
  base.warmup_cycles = 50;
  base.measure_cycles = 200;
  const std::vector<mineq::min::NetworkKind> networks = {
      mineq::min::NetworkKind::kOmega, mineq::min::NetworkKind::kBaseline};
  const std::vector<mineq::sim::SwitchingMode> modes = {
      mineq::sim::SwitchingMode::kStoreAndForward,
      mineq::sim::SwitchingMode::kWormhole};
  const std::vector<double> rates = {0.2, 0.4, 0.6, 0.8, 1.0};
  for (auto _ : state) {
    for (const auto kind : networks) {
      for (const auto mode : modes) {
        for (const double rate : rates) {
          const mineq::sim::Engine engine(mineq::min::build_network(kind, 5));
          mineq::sim::SimConfig config = base;
          config.mode = mode;
          config.lanes = 2;
          config.injection_rate = rate;
          benchmark::DoNotOptimize(
              engine.run(mineq::sim::Pattern::kUniform, config));
        }
      }
    }
  }
}
BENCHMARK(BM_SweepPerPointRebuild);
