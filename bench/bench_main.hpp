/// \file bench_main.hpp
/// \brief Shared main() for the mineq benchmarks: print the regenerated
/// paper artifact first, then run the google-benchmark suite.
///
/// Each bench translation unit defines `void print_report();` and includes
/// this header once.

#pragma once

#include <benchmark/benchmark.h>

void print_report();

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
