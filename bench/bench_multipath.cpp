/// \file bench_multipath.cpp
/// \brief Multipath-fabric benchmarks: the blocking-vs-rearrangeable gap
/// (looping-configured Benes vs a hash-routed banyan on the same
/// permutation), path-diverse simulation throughput per fabric family,
/// the looping configuration algorithm itself, and the surviving-path
/// diversity scan.
///
/// The headline comparison is the report table: a blocking banyan tops
/// out well below 1.0 on an adversarial permutation while the
/// looping-configured Benes sustains full injection — the paper's
/// structural gap, measured behaviorally.

#include <cstdint>
#include <iostream>
#include <vector>

#include "fault/fault_model.hpp"
#include "min/networks.hpp"
#include "multipath/diversity.hpp"
#include "multipath/looping.hpp"
#include "multipath/multipath_wiring.hpp"
#include "perm/permutation.hpp"
#include "sim/engine.hpp"
#include "sim/wormhole.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#include "bench_main.hpp"

namespace {

using mineq::min::MultiPathWiring;
using mineq::min::NetworkKind;

mineq::sim::SimConfig bench_config() {
  mineq::sim::SimConfig config;
  config.injection_rate = 1.0;
  config.warmup_cycles = 100;
  config.measure_cycles = 800;
  config.seed = 9;
  return config;
}

std::vector<std::uint32_t> reversal(std::size_t n) {
  std::vector<std::uint32_t> image(n);
  for (std::size_t t = 0; t < n; ++t) {
    image[t] = static_cast<std::uint32_t>(n - 1 - t);
  }
  return image;
}

}  // namespace

void print_report() {
  using namespace mineq;
  std::cout << "=== Blocking vs rearrangeable on the reversal "
               "permutation (n=5, 32 terminals) ===\n\n";
  sim::SimConfig config = bench_config();
  config.permutation = reversal(32);
  util::TablePrinter table(
      {"fabric", "policy", "throughput", "latency", "hol cycles"});
  {
    const sim::Engine omega{MultiPathWiring::unipath(NetworkKind::kOmega, 5, 2)};
    const sim::SimResult r = omega.run(sim::Pattern::kPermutation, config);
    table.add_row({"omega (blocking)", "forced", util::fixed(r.throughput, 3),
                   util::fixed(r.latency.mean(), 1),
                   std::to_string(r.hol_blocking_cycles)});
  }
  const sim::Engine benes{MultiPathWiring::benes(5, 2)};
  for (const sim::PathPolicy policy :
       {sim::PathPolicy::kHash, sim::PathPolicy::kLooping}) {
    config.path_policy = policy;
    const sim::SimResult r = benes.run(sim::Pattern::kPermutation, config);
    table.add_row({"benes (rearrangeable)",
                   std::string(sim::path_policy_name(policy)),
                   util::fixed(r.throughput, 3),
                   util::fixed(r.latency.mean(), 1),
                   std::to_string(r.hol_blocking_cycles)});
  }
  std::cout << table.str()
            << "\n(the looping-configured Benes sustains the full "
               "permutation conflict-free; the blocking banyan and the "
               "unconfigured Benes cannot)\n\n";
}

static void BM_LoopingConfigure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const MultiPathWiring fabric = MultiPathWiring::benes(n, 2);
  mineq::util::SplitMix64 rng(77);
  const mineq::perm::Permutation pi = mineq::perm::Permutation::random(
      static_cast<std::size_t>(fabric.logical_terminals()), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::multipath::looping_configure(fabric, pi.image()));
  }
  state.counters["terminals"] =
      static_cast<double>(fabric.logical_terminals());
}
BENCHMARK(BM_LoopingConfigure)->DenseRange(3, 9, 2);

static void BM_MultiPathSaf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine{
      MultiPathWiring::dilated(NetworkKind::kOmega, n, 2, 2)};
  mineq::sim::SimConfig config = bench_config();
  config.measure_cycles = 200;
  config.path_policy = mineq::sim::PathPolicy::kAdaptive;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const auto result = engine.run(mineq::sim::Pattern::kUniform, config);
    delivered += result.delivered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiPathSaf)->DenseRange(3, 7, 2);

static void BM_MultiPathWormhole(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine{
      MultiPathWiring::replicated(NetworkKind::kOmega, n, 2, 2)};
  const mineq::sim::WormholeSimulator wormhole(engine);
  mineq::sim::SimConfig config = bench_config();
  config.measure_cycles = 200;
  config.packet_length = 4;
  config.lanes = 2;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const auto result = wormhole.run(mineq::sim::Pattern::kUniform, config);
    delivered += result.delivered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiPathWormhole)->DenseRange(3, 7, 2);

static void BM_MultiPathSafMasked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine{
      MultiPathWiring::dilated(NetworkKind::kOmega, n, 2, 2)};
  mineq::fault::FaultSpec spec;
  spec.kind = mineq::fault::FaultKind::kRandomLinks;
  spec.rate = 0.05;
  spec.seed = 3;
  const mineq::fault::FaultMask mask =
      mineq::fault::build_fault_mask(engine.wiring(), spec);
  mineq::sim::SimConfig config = bench_config();
  config.measure_cycles = 200;
  config.path_policy = mineq::sim::PathPolicy::kAdaptive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config, &mask));
  }
}
BENCHMARK(BM_MultiPathSafMasked)->DenseRange(3, 7, 2);

static void BM_MinPathDiversity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const MultiPathWiring fabric = MultiPathWiring::benes(n, 2);
  mineq::fault::FaultSpec spec;
  spec.kind = mineq::fault::FaultKind::kRandomLinks;
  spec.rate = 0.05;
  spec.seed = 3;
  const mineq::fault::FaultMask mask =
      mineq::fault::build_fault_mask(fabric.wiring(), spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mineq::multipath::min_path_diversity(fabric, &mask));
  }
}
BENCHMARK(BM_MinPathDiversity)->DenseRange(3, 9, 2);
