/// \file bench_megafabric.cpp
/// \brief The sharded single-simulation engine (megafabric mode):
/// serial-vs-sharded wall time and strong-scaling efficiency for both
/// disciplines, plus the ThreadPool dispatch micro-bench comparing the
/// persistent-team path (run_team) against the task-queue path
/// (submit + wait_idle) that motivates it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "sim/wormhole.hpp"
#include "util/format.hpp"
#include "util/parallel.hpp"

#include "bench_main.hpp"

namespace {

double run_once(const mineq::sim::Engine& engine, mineq::sim::SimConfig config,
                std::size_t sim_threads, std::uint64_t* delivered) {
  config.sim_threads = sim_threads;
  const auto t0 = std::chrono::steady_clock::now();
  mineq::sim::SimResult result;
  if (config.mode == mineq::sim::SwitchingMode::kWormhole) {
    result = mineq::sim::WormholeSimulator(engine).run(
        mineq::sim::Pattern::kUniform, config);
  } else {
    result = engine.run(mineq::sim::Pattern::kUniform, config);
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (delivered != nullptr) *delivered = result.delivered;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

void print_report() {
  using namespace mineq;
  std::cout << "=== Megafabric: one simulation sharded over a thread team "
               "===\n\n";
  // Strong scaling: the same fixed-size simulation at growing team
  // sizes. Efficiency = serial_time / (threads * sharded_time); on a
  // single-core box every team multiplexes one CPU, so expect ~1/threads
  // here and read the committed baseline README before comparing.
  util::TablePrinter table({"n", "mode", "threads", "ms/run", "speedup",
                            "efficiency"});
  sim::SimConfig config;
  config.injection_rate = 0.6;
  config.warmup_cycles = 50;
  config.measure_cycles = 300;
  config.seed = 9;
  for (int n : {10, 12, 14}) {
    const sim::Engine engine(
        min::build_kary_network(min::NetworkKind::kOmega, n, 2));
    for (const sim::SwitchingMode mode :
         {sim::SwitchingMode::kStoreAndForward,
          sim::SwitchingMode::kWormhole}) {
      config.mode = mode;
      const char* mode_name =
          mode == sim::SwitchingMode::kWormhole ? "wormhole" : "saf";
      std::uint64_t serial_delivered = 0;
      const double serial_ms = run_once(engine, config, 1, &serial_delivered);
      table.add_row({std::to_string(n), mode_name, "1",
                     util::fixed(serial_ms, 2), "1.00", "1.00"});
      for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                        std::size_t{8}}) {
        std::uint64_t delivered = 0;
        const double ms = run_once(engine, config, threads, &delivered);
        const double speedup = serial_ms / ms;
        table.add_row({std::to_string(n), mode_name,
                       std::to_string(threads), util::fixed(ms, 2),
                       util::fixed(speedup, 2),
                       util::fixed(speedup / static_cast<double>(threads),
                                   3)});
        if (delivered != serial_delivered) {
          std::cout << "DETERMINISM VIOLATION at n=" << n << " threads="
                    << threads << "\n";
        }
      }
    }
  }
  std::cout << table.str()
            << "\n(results are byte-identical at every thread count; "
               "speedup needs real cores — see the baseline README)\n\n";
}

// One simulation, sharded: the headline serial-vs-sharded comparison.
// range(0) = n, range(1) = sim_threads (1 is the serial policy loop).
static void BM_MegafabricSaf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_kary_network(mineq::min::NetworkKind::kOmega, n, 2));
  mineq::sim::SimConfig config;
  config.injection_rate = 0.6;
  config.warmup_cycles = 20;
  config.measure_cycles = 100;
  config.sim_threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config));
  }
  state.counters["terminal-cycles/s"] = benchmark::Counter(
      static_cast<double>(engine.terminals()) *
          static_cast<double>(config.warmup_cycles + config.measure_cycles) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MegafabricSaf)
    ->ArgsProduct({{10, 12, 14}, {1, 2, 8}});

static void BM_MegafabricWormhole(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_kary_network(mineq::min::NetworkKind::kOmega, n, 2));
  const mineq::sim::WormholeSimulator simulator(engine);
  mineq::sim::SimConfig config;
  config.injection_rate = 0.6;
  config.warmup_cycles = 20;
  config.measure_cycles = 100;
  config.packet_length = 4;
  config.lanes = 2;
  config.sim_threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator.run(mineq::sim::Pattern::kUniform, config));
  }
}
BENCHMARK(BM_MegafabricWormhole)
    ->ArgsProduct({{10, 12, 14}, {1, 2, 8}});

// Dispatch micro-bench: the per-cycle cost of waking a team. The sharded
// driver calls into the team once per simulation (workers live across
// cycles, rendezvousing on a SpinBarrier), but the honest comparison for
// a task-queue alternative is one dispatch per cycle — which is exactly
// what these two measure: one round-trip of handing N trivial work items
// to N workers and getting control back.
static void BM_DispatchRunTeam(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mineq::util::ThreadPool pool(1);
  std::atomic<std::uint64_t> sink(0);
  for (auto _ : state) {
    pool.run_team(n, [&sink](std::size_t index, std::size_t) {
      sink.fetch_add(index + 1, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_DispatchRunTeam)->Arg(2)->Arg(4)->Arg(8);

static void BM_DispatchTaskQueue(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mineq::util::ThreadPool pool(n);
  std::atomic<std::uint64_t> sink(0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&sink, i] {
        sink.fetch_add(i + 1, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_DispatchTaskQueue)->Arg(2)->Arg(4)->Arg(8);
