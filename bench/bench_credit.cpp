/// \file bench_credit.cpp
/// \brief Credit-based flow control and virtual-lane arbitration: the
/// saturation report (idealized handshake vs credits across return
/// latencies, and the per-SL latency split under weighted arbitration)
/// plus hot-loop overhead benchmarks for both disciplines.

#include <iostream>
#include <vector>

#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "util/format.hpp"

#include "bench_main.hpp"

namespace {

mineq::sim::SimConfig saf_config(double rate) {
  mineq::sim::SimConfig config;
  config.injection_rate = rate;
  config.packet_length = 4;
  config.queue_capacity = 4;
  config.warmup_cycles = 200;
  config.measure_cycles = 1500;
  config.seed = 12;
  return config;
}

}  // namespace

void print_report() {
  using namespace mineq;
  std::cout << "=== Credit flow control vs idealized handshake (Omega, "
               "n=6, saf) ===\n\n";
  const sim::Engine engine(min::build_network(min::NetworkKind::kOmega, 6));

  util::TablePrinter table({"handshake", "latency", "rate", "throughput",
                            "lat mean", "lat p99", "cstall", "hol"});
  for (const double rate : {0.5, 1.0}) {
    for (const int credit_latency : {-1, 0, 1, 4, 16}) {
      sim::SimConfig config = saf_config(rate);
      if (credit_latency >= 0) {
        config.credits.enabled = true;
        config.credits.return_latency =
            static_cast<std::uint64_t>(credit_latency);
      }
      const sim::SimResult r = engine.run(sim::Pattern::kUniform, config);
      table.add_row({credit_latency < 0 ? "ideal" : "credits",
                     credit_latency < 0 ? "-"
                                        : std::to_string(credit_latency),
                     util::fixed(rate, 1), util::fixed(r.throughput, 3),
                     util::fixed(r.latency.mean(), 1),
                     util::fixed(r.latency_histogram.quantile(0.99), 0),
                     util::with_commas(r.credit_stall_cycles),
                     util::with_commas(r.hol_blocking_cycles)});
    }
  }
  std::cout << table.str()
            << "\n(credit latency 0 reproduces the idealized handshake "
               "exactly; longer\n return latencies shrink the effective "
               "window and throughput degrades)\n\n";

  std::cout << "=== Weighted virtual-lane arbitration (wormhole, 2 SLs, "
               "saturation) ===\n\n";
  util::TablePrinter arb({"arbitration", "weights", "sl0 lat", "sl1 lat",
                          "throughput"});
  for (const sim::ArbitrationPolicy policy :
       {sim::ArbitrationPolicy::kRoundRobin,
        sim::ArbitrationPolicy::kWeighted,
        sim::ArbitrationPolicy::kPriority}) {
    sim::SimConfig config;
    config.mode = sim::SwitchingMode::kWormhole;
    config.injection_rate = 1.0;
    config.packet_length = 4;
    config.lanes = 2;
    config.lane_depth = 4;
    config.warmup_cycles = 200;
    config.measure_cycles = 1500;
    config.seed = 12;
    config.credits.enabled = true;
    config.credits.arbitration = policy;
    config.credits.sl_map = {0, 1};
    config.credits.weights = {4, 1};
    const sim::SimResult r = engine.run(sim::Pattern::kUniform, config);
    arb.add_row({std::string(sim::arbitration_policy_name(policy)), "4;1",
                 util::fixed(r.sl_latency[0].mean(), 1),
                 util::fixed(r.sl_latency[1].mean(), 1),
                 util::fixed(r.throughput, 3)});
  }
  std::cout << arb.str()
            << "\n(round-robin ignores the weights; weighted and priority "
               "open a per-SL\n latency gap favoring the heavy class)\n\n";
}

static void BM_SafCredits(benchmark::State& state) {
  // Credit-handshake overhead over the idealized probe, same traffic:
  // range(0) < 0 disables credits, otherwise it is the return latency.
  const int latency = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, 6));
  mineq::sim::SimConfig config;
  config.injection_rate = 0.8;
  config.packet_length = 4;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  if (latency >= 0) {
    config.credits.enabled = true;
    config.credits.return_latency = static_cast<std::uint64_t>(latency);
  }
  std::uint64_t flits = 0;
  for (auto _ : state) {
    const auto result = engine.run(mineq::sim::Pattern::kUniform, config);
    flits += result.flits_delivered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["flits/s"] = benchmark::Counter(
      static_cast<double>(flits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SafCredits)->Arg(-1)->Arg(0)->Arg(4);

static void BM_WormholeCredits(benchmark::State& state) {
  const int latency = static_cast<int>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kOmega, 6));
  mineq::sim::SimConfig config;
  config.mode = mineq::sim::SwitchingMode::kWormhole;
  config.injection_rate = 0.8;
  config.packet_length = 4;
  config.lanes = 2;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  if (latency >= 0) {
    config.credits.enabled = true;
    config.credits.return_latency = static_cast<std::uint64_t>(latency);
  }
  std::uint64_t flits = 0;
  for (auto _ : state) {
    const auto result = engine.run(mineq::sim::Pattern::kUniform, config);
    flits += result.flits_delivered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["flits/s"] = benchmark::Counter(
      static_cast<double>(flits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WormholeCredits)->Arg(-1)->Arg(0)->Arg(4);

static void BM_WeightedArbitration(benchmark::State& state) {
  // Cost of the arbitration seam: 0 = rr, 1 = weighted, 2 = priority,
  // all with credits on so only the arbiter policy varies.
  const auto policy =
      static_cast<mineq::sim::ArbitrationPolicy>(state.range(0));
  const mineq::sim::Engine engine(
      mineq::min::build_network(mineq::min::NetworkKind::kBaseline, 6));
  mineq::sim::SimConfig config;
  config.mode = mineq::sim::SwitchingMode::kWormhole;
  config.injection_rate = 1.0;
  config.packet_length = 4;
  config.lanes = 2;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  config.credits.enabled = true;
  config.credits.arbitration = policy;
  config.credits.sl_map = {0, 1};
  config.credits.weights = {4, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(mineq::sim::Pattern::kUniform, config));
  }
}
BENCHMARK(BM_WeightedArbitration)->Arg(0)->Arg(1)->Arg(2);
