/// \file mineq_sweep.cpp
/// \brief Experiment-sweep CLI: fan a {network x radix x pattern x mode x
/// lanes x faults x rate} grid across a thread pool and emit CSV/JSON.
///
/// Example (the saturation study from the README):
///   mineq_sweep --networks omega,baseline --patterns uniform,bitrev,hotspot
///     --rates 0.1:1.0:0.1 --mode wormhole --lanes 1,2,4 --csv sweep.csv
///
/// Resilience sweep (fault kind x fault rate x placement seed, with
/// degraded-mode routing and survivor-topology columns in the output):
///   mineq_sweep --networks omega --fault-kinds links,switches
///     --fault-rates 0.01:0.10:0.01 --fault-seeds 1,2,3 --rates 0.6
///
/// k-ary sweep (radix-r switches; omega/flip/baseline have closed-form
/// constructions at radix > 2, incl. partial-port switch faults):
///   mineq_sweep --networks omega,baseline --radix 2,4 --stages 4
///     --fault-kinds none,partial --fault-rates 0.1 --rates 0.3,0.6
///
/// Multipath resilience (Benes / dilated / replicated fabrics next to
/// their unipath base, with path-diversity columns in the output):
///   mineq_sweep --networks omega,benes,dilated --paths 2 --path-policy
///     hash,adaptive --fault-kinds links --fault-rates 0.05 --rates 0.6
///
/// Workload axis (open-loop vs closed-loop honesty check, then record a
/// run as a trace and replay it):
///   mineq_sweep --networks omega --workload open,closedloop --rr-window 8
///     --rates 0.6 --csv rr.csv
///   mineq_sweep --networks omega --rates 0.6 --trace-out-workload run.trace
///   mineq_sweep --networks omega --rates 0.6 --trace-in run.trace
///
/// Output is byte-identical for any --threads value: every grid point
/// derives its RNG stream from (seed, grid index), not from scheduling.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <fstream>
#include <memory>
#include <sstream>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/format.hpp"
#include "workload/spec.hpp"

namespace {

using mineq::exp::SweepGrid;
using mineq::exp::SweepPoint;

/// Comma-joined registry tokens, so the help text can never drift from
/// the parsers (which enumerate the same registries in their rejection
/// messages).
std::string network_tokens() {
  std::string out;
  for (const mineq::min::NetworkKind kind : mineq::min::all_network_kinds()) {
    if (!out.empty()) out += ',';
    out += mineq::min::network_token(kind);
  }
  return out;
}

std::string fabric_tokens() {
  std::string out;
  for (const mineq::min::MultiPathKind kind :
       mineq::min::all_multipath_kinds()) {
    if (kind == mineq::min::MultiPathKind::kUnipath) continue;
    if (!out.empty()) out += ',';
    out += mineq::min::multipath_kind_name(kind);
  }
  return out;
}

std::string pattern_tokens() {
  std::string out;
  for (const mineq::sim::Pattern pattern : mineq::sim::all_patterns()) {
    if (!out.empty()) out += ',';
    out += mineq::sim::pattern_name(pattern);
  }
  return out;
}

std::string path_policy_tokens() {
  std::string out;
  for (const mineq::sim::PathPolicy policy : mineq::sim::all_path_policies()) {
    if (policy == mineq::sim::PathPolicy::kLooping) continue;  // not sweepable
    if (!out.empty()) out += ',';
    out += mineq::sim::path_policy_name(policy);
  }
  return out;
}

std::string workload_tokens() {
  std::string out;
  for (const mineq::workload::Kind kind : mineq::workload::all_kinds()) {
    if (!out.empty()) out += ',';
    out += mineq::workload::kind_name(kind);
  }
  return out;
}

std::string stall_cause_tokens() {
  std::string out;
  for (std::size_t i = 0; i < mineq::obs::kStallCauseCount; ++i) {
    if (!out.empty()) out += ',';
    out +=
        mineq::obs::stall_cause_name(static_cast<mineq::obs::StallCause>(i));
  }
  return out;
}

std::string usage() {
  return "mineq_sweep — parallel MIN experiment sweeps\n"
         "\n"
         "Usage: mineq_sweep [options]\n"
         "\n"
         "Grid axes (comma-separated lists):\n"
         "  --networks LIST   " +
         network_tokens() +
         "\n"
         "                    plus multipath fabrics " +
         fabric_tokens() +
         "\n"
         "                    (composed over omega)        [omega,baseline]\n"
         R"(  --radix LIST      switch radix r (r x r cells, r^N terminals);
                    radix > 2 needs omega/flip/baseline         [2]
  --patterns LIST   )" +
         pattern_tokens() +
         "\n"
         R"(                    (bursty = two-state Markov on/off)         [uniform]
  --paths LIST      path multiplicity per multipath fabric:
                    dilation of dilated, planes of replicated
                    (a Benes fixes its own)                     [2]
  --path-policy LIST  multipath path selection: )" +
         path_policy_tokens() +
         R"(   [hash]
  --mode LIST       saf,wormhole                               [saf])"
         R"(
  --lanes LIST      virtual channels per input port (wormhole
                    only — saf points collapse this axis)      [1]
  --rates SPEC      comma list (0.2,0.5,1.0) or range start:stop:step
                    (0.1:1.0:0.1)                              [0.1:1.0:0.1]
  --fault-kinds LIST  none,links,switches,burst,partial ("none"
                    collapses to a single pristine variant)    [none]
  --fault-rates SPEC  fraction of arcs/switches faulted (comma
                    list or range, like --rates)               [0.05]
  --fault-seeds LIST  fault-placement seeds                    [1]
  --burst-on-off LIST P(ON->OFF) per cycle, bursty pattern only
                    (mean burst = 1/p cycles)                  [0.125]
  --burst-off-on LIST P(OFF->ON) per cycle (mean idle = 1/p)   [0.041667]
  --credit-latency LIST  credit-return latencies (cycles); any credit
                    flag switches the sweep from the idealized
                    handshake to link-level credit flow control [0]
  --arbitration LIST  output-port arbiter: rr,weighted,priority
                    (crossed with --credit-latency)            [rr]
  --vl-weights LIST   per-virtual-lane arbitration weights (last
                    entry broadcasts to higher lanes)          [uniform]
  --sl-map LIST       service-level -> virtual-lane map; defines
                    SL count = list length (packets carry
                    SL = terminal % count)                     [all->0]
  --workload LIST   injection source: )" +
         workload_tokens() +
         R"( — the whole
                    grid repeats per value, appended after the
                    prefix (trace needs --trace-in)            [open]

Fixed parameters:
  --stages N          stages (terminals = radix^N)             [6]
  --packet-length N   flits per packet                         [4]
  --lane-depth N      flits buffered per lane (wormhole)       [4]
  --queue-capacity N  packets per input FIFO (saf)             [4]
  --warmup N          warmup cycles                            [200]
  --measure N         measured cycles                          [2000]
  --seed N            base seed                                [1]
  --threads N         worker threads (0 = hardware)            [0]
  --sim-threads N     shard each simulation over N threads     [1]
                      (byte-identical to serial; the default
                      sweep fan-out divides itself by N so the
                      two levels never oversubscribe)
  --rr-window N       closed-loop: max outstanding (un-replied)
                      requests per client                      [4]
  --trace-in FILE     workload trace to replay (line format:
                      cycle src dst size [tag]); implies a
                      "trace" workload value when none listed
  --time-compression N  divide replayed trace cycles by N      [1]
  --trace-out-workload FILE  record the FIRST grid point's
                      accepted injections as a workload trace
                      (replayable through --trace-in; the
                      replay reproduces the run's delivered and
                      latency counters exactly)

Observability (any flag enables the instrumented simulator
  instantiations; all off = the uninstrumented fast path):
  --probe-stride N    sample per-stage occupancy / utilization /
                      stall / reroute time series every N measured
                      cycles (0 = off)                         [0]
  --flow-stats        record exact per-(src,dst) and per-SL latency
                      histograms; adds worst-p99 summary columns
  --trace-sample N    trace the deterministic 1-in-N packet subset
                      (0 = off)                                [0]
  --trace-out FILE    write traced packet events as Chrome
                      trace-event JSON (open in Perfetto); implies
                      --trace-sample 64 when no rate is given
  Any observability flag also splits hol_blocking_cycles exactly by
  cause into the stall_* CSV/JSON columns; causes:
    )" + stall_cause_tokens() +
         R"(

Output:
  --csv FILE          write CSV ("-" = stdout, implies --quiet)
  --json FILE         write JSON ("-" = stdout, implies --quiet)
  --quiet             suppress the summary table
  --help              this text
)";
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "mineq_sweep: " << message << "\n\nRun with --help for usage.\n";
  std::exit(1);
}

std::vector<std::string> split_list(std::string_view text, char sep) {
  std::vector<std::string> items;
  while (!text.empty()) {
    const std::size_t pos = text.find(sep);
    items.emplace_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return items;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  char* end = nullptr;
  // strtoull silently wraps negatives; reject any sign explicitly.
  const bool signed_input = !text.empty() && (text[0] == '-' || text[0] == '+');
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (signed_input || end == text.c_str() || *end != '\0') {
    fail("cannot parse " + what + " \"" + text + '"');
  }
  return value;
}

double parse_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    fail("cannot parse " + what + " \"" + text + '"');
  }
  return value;
}

/// "0.1:1.0:0.1" (inclusive range) or "0.2,0.5,1.0" (explicit list).
std::vector<double> parse_rates(const std::string& spec) {
  std::vector<double> rates;
  if (spec.find(':') != std::string::npos) {
    const auto parts = split_list(spec, ':');
    if (parts.size() != 3) fail("rate range must be start:stop:step");
    const double start = parse_double(parts[0], "rate");
    const double stop = parse_double(parts[1], "rate");
    const double step = parse_double(parts[2], "rate step");
    if (step <= 0.0) fail("rate step must be positive");
    for (double rate = start; rate <= stop + 1e-9; rate += step) {
      // Accumulated float error can overshoot stop (0:1:0.05 ends at
      // 1.0000000000000002, which run_sweep would reject); clamp.
      rates.push_back(std::min(rate, stop));
    }
  } else {
    for (const std::string& item : split_list(spec, ',')) {
      rates.push_back(parse_double(item, "rate"));
    }
  }
  return rates;
}

void print_summary(const mineq::exp::SweepResult& sweep) {
  using mineq::util::fixed;
  // The observability columns (dominant stall cause, per-flow worst p99)
  // only appear when a collector ran — an uninstrumented sweep keeps the
  // familiar narrow table.
  const bool obs_on = sweep.grid.base.obs.any();
  // Likewise the workload columns: they only appear when the grid swept
  // a non-open source (effective rate vs configured rate is the
  // closed-loop self-throttling readout).
  const bool wl_on = std::any_of(
      sweep.grid.workloads.begin(), sweep.grid.workloads.end(),
      [](const mineq::workload::Spec& spec) {
        return spec.kind != mineq::workload::Kind::kOpen;
      });
  std::vector<std::string> headers = {
      "network", "fabric", "paths", "r", "pattern", "mode", "lanes",
      "fault", "frate", "rate", "throughput", "accept", "lat mean",
      "lat p99", "dropped", "fullacc", "mindiv", "hol"};
  if (wl_on) {
    headers.push_back("workload");
    headers.push_back("eff rate");
    headers.push_back("reply p99");
    headers.push_back("wstall");
  }
  if (obs_on) {
    headers.push_back("stall cause");
    headers.push_back("flow p99");
  }
  mineq::util::TablePrinter table(std::move(headers));
  for (const SweepPoint& p : sweep.points) {
    std::vector<std::string> row = {
        mineq::min::network_token(p.network),
        mineq::min::multipath_kind_name(p.fabric),
        std::to_string(p.result.paths_available),
        std::to_string(p.radix),
        mineq::sim::pattern_name(p.pattern),
        mineq::sim::switching_mode_name(p.mode),
        std::to_string(p.lanes),
        mineq::fault::fault_kind_name(p.fault.kind),
        fixed(p.fault.rate, 2), fixed(p.rate, 2),
        fixed(p.result.throughput, 3),
        fixed(p.result.acceptance, 3),
        fixed(p.result.latency.mean(), 1),
        fixed(p.result.latency_histogram.quantile(0.99), 0),
        std::to_string(p.result.packets_dropped_faulted),
        p.survivor.full_access ? "yes" : "no",
        std::to_string(p.min_path_diversity),
        std::to_string(p.result.hol_blocking_cycles)};
    if (wl_on) {
      row.push_back(mineq::workload::kind_name(p.workload.kind));
      row.push_back(fixed(p.result.offered_rate_effective, 3));
      row.push_back(
          fixed(p.result.reply_latency_histogram.quantile(0.99), 0));
      row.push_back(std::to_string(p.result.window_stall_cycles));
    }
    if (obs_on) {
      row.emplace_back(
          mineq::obs::stall_cause_name(p.result.dominant_stall_cause()));
      row.push_back(fixed(p.result.flows.worst_p99, 0));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.str();
}

/// Process-track label of one traced sweep point in the merged
/// Perfetto document.
std::string trace_label(const SweepPoint& p) {
  return mineq::min::network_token(p.network) + '/' +
         std::string(mineq::min::multipath_kind_name(p.fabric)) + '/' +
         std::string(mineq::sim::pattern_name(p.pattern)) + '/' +
         std::string(mineq::sim::switching_mode_name(p.mode)) +
         " rate=" + mineq::util::fixed(p.rate, 2);
}

/// Cross {kinds x rates x seeds} into the fault axis; "none" collapses
/// to the single pristine spec regardless of the rate/seed lists (a
/// no-fault point is one point).
std::vector<mineq::fault::FaultSpec> cross_fault_axis(
    const std::vector<mineq::fault::FaultKind>& kinds,
    const std::vector<double>& rates,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<mineq::fault::FaultSpec> specs;
  bool none_added = false;
  for (const mineq::fault::FaultKind kind : kinds) {
    if (kind == mineq::fault::FaultKind::kNone) {
      if (!none_added) specs.push_back(mineq::fault::FaultSpec{});
      none_added = true;
      continue;
    }
    for (const double rate : rates) {
      for (const std::uint64_t seed : seeds) {
        specs.push_back(mineq::fault::FaultSpec{kind, rate, seed});
      }
    }
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  SweepGrid grid;
  grid.networks = {mineq::min::NetworkKind::kOmega,
                   mineq::min::NetworkKind::kBaseline};
  grid.patterns = {mineq::sim::Pattern::kUniform};
  grid.modes = {mineq::sim::SwitchingMode::kStoreAndForward};
  grid.lane_counts = {1};
  grid.rates = parse_rates("0.1:1.0:0.1");
  grid.base.packet_length = 4;

  std::vector<mineq::min::MultiPathKind> fabric_kinds;
  std::vector<int> fabric_paths = {2};
  std::vector<mineq::fault::FaultKind> fault_kinds = {
      mineq::fault::FaultKind::kNone};
  std::vector<double> fault_rates = {0.05};
  std::vector<std::uint64_t> fault_seeds = {1};
  std::vector<double> burst_on_off = {mineq::sim::BurstParams{}.on_to_off};
  std::vector<double> burst_off_on = {mineq::sim::BurstParams{}.off_to_on};
  std::vector<std::uint64_t> credit_latencies;
  std::vector<mineq::sim::ArbitrationPolicy> arbitrations;
  std::vector<unsigned> vl_weights;
  std::vector<unsigned> sl_map;
  bool credits_requested = false;
  std::vector<mineq::workload::Kind> workload_kinds;
  unsigned rr_window = mineq::workload::Spec{}.rr_window;
  std::uint64_t time_compression = 1;
  std::string trace_in_path;
  std::string trace_out_workload_path;

  std::size_t threads = 0;
  std::string csv_path;
  std::string json_path;
  std::string trace_path;
  bool quiet = false;

  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) fail(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (arg == "--help" || arg == "-h") {
        std::cout << usage();
        return 0;
      } else if (arg == "--networks") {
        grid.networks.clear();
        fabric_kinds.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          // Multipath fabric tokens share the axis with the classic
          // single-path networks; route them to the fabric axis.
          if (item == "benes" || item == "dilated" || item == "replicated") {
            fabric_kinds.push_back(mineq::min::parse_multipath_kind(item));
          } else {
            grid.networks.push_back(mineq::min::parse_network_kind(item));
          }
        }
      } else if (arg == "--paths") {
        fabric_paths.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          const std::uint64_t paths = parse_u64(item, "path count");
          if (paths < 2 || paths > 64) {
            fail("path count must be within [2, 64], got " + item);
          }
          fabric_paths.push_back(static_cast<int>(paths));
        }
      } else if (arg == "--path-policy" || arg == "--path-policies") {
        grid.path_policies.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          grid.path_policies.push_back(mineq::sim::parse_path_policy(item));
        }
      } else if (arg == "--radix" || arg == "--radices") {
        grid.radices.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          const std::uint64_t radix = parse_u64(item, "radix");
          // Range-check before narrowing: a huge value must not wrap
          // into the valid [2, 16] window.
          if (radix < 2 || radix > 16) {
            fail("radix must be within [2, 16], got " + item);
          }
          grid.radices.push_back(static_cast<int>(radix));
        }
      } else if (arg == "--patterns") {
        grid.patterns.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          grid.patterns.push_back(mineq::sim::parse_pattern(item));
        }
      } else if (arg == "--mode" || arg == "--modes") {
        grid.modes.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          grid.modes.push_back(mineq::sim::parse_switching_mode(item));
        }
      } else if (arg == "--lanes") {
        grid.lane_counts.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          grid.lane_counts.push_back(parse_u64(item, "lane count"));
        }
      } else if (arg == "--rates") {
        grid.rates = parse_rates(next_value(i));
      } else if (arg == "--fault-kinds") {
        fault_kinds.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          fault_kinds.push_back(mineq::fault::parse_fault_kind(item));
        }
      } else if (arg == "--fault-rates") {
        fault_rates = parse_rates(next_value(i));
      } else if (arg == "--fault-seeds") {
        fault_seeds.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          fault_seeds.push_back(parse_u64(item, "fault seed"));
        }
      } else if (arg == "--burst-on-off") {
        burst_on_off.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          burst_on_off.push_back(parse_double(item, "burst on->off"));
        }
      } else if (arg == "--burst-off-on") {
        burst_off_on.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          burst_off_on.push_back(parse_double(item, "burst off->on"));
        }
      } else if (arg == "--credit-latency" || arg == "--credit-latencies") {
        credits_requested = true;
        credit_latencies.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          credit_latencies.push_back(parse_u64(item, "credit latency"));
        }
      } else if (arg == "--arbitration" || arg == "--arbitrations") {
        credits_requested = true;
        arbitrations.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          arbitrations.push_back(mineq::sim::parse_arbitration_policy(item));
        }
      } else if (arg == "--vl-weights") {
        credits_requested = true;
        vl_weights.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          vl_weights.push_back(
              static_cast<unsigned>(parse_u64(item, "VL weight")));
        }
      } else if (arg == "--sl-map") {
        credits_requested = true;
        sl_map.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          sl_map.push_back(
              static_cast<unsigned>(parse_u64(item, "SL->VL entry")));
        }
      } else if (arg == "--stages") {
        grid.stages = static_cast<int>(parse_u64(next_value(i), "stages"));
      } else if (arg == "--packet-length") {
        grid.base.packet_length = parse_u64(next_value(i), "packet length");
      } else if (arg == "--lane-depth") {
        grid.base.lane_depth = parse_u64(next_value(i), "lane depth");
      } else if (arg == "--queue-capacity") {
        grid.base.queue_capacity = parse_u64(next_value(i), "queue capacity");
      } else if (arg == "--warmup") {
        grid.base.warmup_cycles = parse_u64(next_value(i), "warmup cycles");
      } else if (arg == "--measure") {
        grid.base.measure_cycles = parse_u64(next_value(i), "measure cycles");
      } else if (arg == "--seed") {
        grid.base.seed = parse_u64(next_value(i), "seed");
      } else if (arg == "--threads") {
        threads = parse_u64(next_value(i), "thread count");
      } else if (arg == "--sim-threads") {
        grid.base.sim_threads =
            parse_u64(next_value(i), "per-simulation thread count");
      } else if (arg == "--workload" || arg == "--workloads") {
        workload_kinds.clear();
        for (const std::string& item : split_list(next_value(i), ',')) {
          workload_kinds.push_back(mineq::workload::parse_kind(item));
        }
      } else if (arg == "--rr-window") {
        rr_window = static_cast<unsigned>(
            parse_u64(next_value(i), "request-reply window"));
      } else if (arg == "--time-compression") {
        time_compression =
            parse_u64(next_value(i), "trace time-compression factor");
      } else if (arg == "--trace-in") {
        trace_in_path = next_value(i);
      } else if (arg == "--trace-out-workload") {
        trace_out_workload_path = next_value(i);
      } else if (arg == "--probe-stride") {
        grid.base.obs.probe_stride = parse_u64(next_value(i), "probe stride");
      } else if (arg == "--flow-stats") {
        grid.base.obs.flow_stats = true;
      } else if (arg == "--trace-sample") {
        grid.base.obs.trace_sample =
            parse_u64(next_value(i), "trace sample rate");
      } else if (arg == "--trace-out") {
        trace_path = next_value(i);
      } else if (arg == "--csv") {
        csv_path = next_value(i);
      } else if (arg == "--json") {
        json_path = next_value(i);
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        fail("unknown option \"" + std::string(arg) + '"');
      }
    } catch (const std::invalid_argument& error) {
      fail(error.what());
    }
  }

  // A machine-readable stream on stdout must not be polluted by the
  // summary table.
  if (csv_path == "-" || json_path == "-") quiet = true;

  // --trace-out without an explicit sampling rate traces the 1-in-64
  // deterministic packet subset — dense enough to see structure, sparse
  // enough that the document stays loadable.
  if (!trace_path.empty() && grid.base.obs.trace_sample == 0) {
    grid.base.obs.trace_sample = 64;
  }

  grid.faults = cross_fault_axis(fault_kinds, fault_rates, fault_seeds);
  if (credits_requested) {
    // Cross {latency x arbitration} into the flow-control axis; the VL
    // weights and SL->VL map are shared by every credit point.
    if (credit_latencies.empty()) credit_latencies.push_back(0);
    if (arbitrations.empty()) {
      arbitrations.push_back(mineq::sim::ArbitrationPolicy::kRoundRobin);
    }
    grid.credits.clear();
    for (const std::uint64_t latency : credit_latencies) {
      for (const mineq::sim::ArbitrationPolicy arbitration : arbitrations) {
        mineq::sim::CreditConfig cc;
        cc.enabled = true;
        cc.return_latency = latency;
        cc.arbitration = arbitration;
        cc.weights = vl_weights;
        cc.sl_map = sl_map;
        grid.credits.push_back(std::move(cc));
      }
    }
  }
  grid.bursts.clear();
  for (const double on_off : burst_on_off) {
    for (const double off_on : burst_off_on) {
      grid.bursts.push_back(mineq::sim::BurstParams{on_off, off_on});
    }
  }
  // The workload axis. A loaded --trace-in implies a trace workload
  // value when none was listed, so a bare replay needs only the file.
  std::shared_ptr<const mineq::workload::TraceData> trace_data;
  if (!trace_in_path.empty()) {
    std::ifstream in(trace_in_path, std::ios::binary);
    if (!in) fail("cannot open trace file " + trace_in_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      trace_data = std::make_shared<const mineq::workload::TraceData>(
          mineq::workload::parse_trace(buffer.str()));
    } catch (const std::invalid_argument& error) {
      fail(trace_in_path + ": " + error.what());
    }
    if (std::find(workload_kinds.begin(), workload_kinds.end(),
                  mineq::workload::Kind::kTrace) == workload_kinds.end()) {
      workload_kinds.push_back(mineq::workload::Kind::kTrace);
    }
  }
  if (!workload_kinds.empty()) {
    grid.workloads.clear();
    for (const mineq::workload::Kind kind : workload_kinds) {
      mineq::workload::Spec spec;
      spec.kind = kind;
      if (kind == mineq::workload::Kind::kTrace) {
        if (!trace_data) fail("--workload trace needs --trace-in FILE");
        spec.trace = trace_data;
      }
      grid.workloads.push_back(std::move(spec));
    }
  }
  for (mineq::workload::Spec& spec : grid.workloads) {
    spec.rr_window = rr_window;
    spec.time_compression = time_compression;
    // Recording works with any kind: every grid repeat captures its
    // injections; the first grid point's capture is what gets written.
    spec.record = !trace_out_workload_path.empty();
  }

  // Cross {fabric kind x paths} into the fabric axis; the Benes fixes
  // its own multiplicity (radix^(stages-1)), so it contributes one spec
  // regardless of the --paths list. Dilated/replicated fabrics compose
  // over the omega base.
  for (const mineq::min::MultiPathKind kind : fabric_kinds) {
    if (kind == mineq::min::MultiPathKind::kBenes) {
      grid.fabrics.push_back(mineq::exp::FabricSpec{
          kind, mineq::min::NetworkKind::kOmega, 2});
      continue;
    }
    for (const int paths : fabric_paths) {
      grid.fabrics.push_back(mineq::exp::FabricSpec{
          kind, mineq::min::NetworkKind::kOmega, paths});
    }
  }

  try {
    const mineq::exp::SweepResult sweep = mineq::exp::run_sweep(grid, threads);
    if (!quiet) {
      print_summary(sweep);
      std::cerr << sweep.points.size() << " grid points";
      for (const int radix : grid.radices) {
        std::uint64_t terminals = 1;
        for (int s = 0; s < grid.stages; ++s) {
          terminals *= static_cast<std::uint64_t>(radix);
        }
        std::cerr << ", " << terminals << " terminals per radix-" << radix
                  << " network";
      }
      std::cerr << '\n';
    }
    if (!csv_path.empty()) {
      const std::string csv = mineq::exp::sweep_csv(sweep);
      if (csv_path == "-") {
        std::cout << csv;
      } else {
        mineq::exp::write_text_file(csv_path, csv);
      }
    }
    if (!json_path.empty()) {
      const std::string json = mineq::exp::sweep_json(sweep);
      if (json_path == "-") {
        std::cout << json;
      } else {
        mineq::exp::write_text_file(json_path, json);
      }
    }
    if (!trace_out_workload_path.empty()) {
      if (sweep.points.empty()) fail("nothing simulated, no trace to write");
      mineq::exp::write_text_file(
          trace_out_workload_path,
          mineq::workload::write_trace(
              sweep.points.front().result.workload_trace));
    }
    if (!trace_path.empty()) {
      // One merged Perfetto document, one process track per traced grid
      // point (points whose sampled subset ejected nothing contribute no
      // track).
      std::vector<
          std::pair<std::string, const std::vector<mineq::obs::TraceEvent>*>>
          processes;
      for (const SweepPoint& p : sweep.points) {
        if (p.result.trace.empty()) continue;
        processes.emplace_back(trace_label(p), &p.result.trace);
      }
      mineq::exp::write_text_file(trace_path,
                                  mineq::obs::trace_json_multi(processes));
    }
  } catch (const std::exception& error) {
    fail(error.what());
  }
  return 0;
}
