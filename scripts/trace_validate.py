#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON document emitted by the obs:: layer.

Checks, per document:
  - top-level schema: {"traceEvents": [...]} with well-formed events
    (required keys per phase: M metadata, B/E duration slices, i instants);
  - per (pid, tid) track: timestamps are monotone non-decreasing in
    document order (the emission-order contract of obs::sort_trace);
  - per track: B/E events nest — every E closes the innermost open B of
    the same name, and instants only occur inside the packet slice.
Tracks whose packet was still in flight at the end of the run may leave
slices open; that is legal and reported only with --strict.

Usage: trace_validate.py FILE... [--strict]
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys

REQUIRED_COMMON = {"ph", "pid"}
DURATION_KEYS = {"name", "ts", "tid"}


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def validate_event(event, index, path, errors):
    """Schema check for one event; returns its phase or None."""
    if not isinstance(event, dict):
        fail(errors, path, f"event {index} is not an object")
        return None
    missing = REQUIRED_COMMON - event.keys()
    if missing:
        fail(errors, path, f"event {index} missing keys {sorted(missing)}")
        return None
    ph = event["ph"]
    if ph == "M":
        if event.get("name") != "process_name":
            fail(errors, path, f"event {index}: unexpected metadata {event}")
        return ph
    if ph in ("B", "E", "i"):
        missing = DURATION_KEYS - event.keys()
        if missing:
            fail(errors, path,
                 f"event {index} ({ph}) missing keys {sorted(missing)}")
            return None
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            fail(errors, path, f"event {index}: bad ts {event['ts']!r}")
        if ph == "i" and event.get("s") != "t":
            fail(errors, path, f"event {index}: instant without thread scope")
        return ph
    fail(errors, path, f"event {index}: unknown phase {ph!r}")
    return None


def validate_track(key, events, path, errors, strict):
    """Monotonicity and B/E nesting for one (pid, tid) track."""
    last_ts = -1
    stack = []  # open slice names, innermost last
    for event in events:
        ts = event["ts"]
        if ts < last_ts:
            fail(errors, path,
                 f"track {key}: ts runs backwards ({ts} after {last_ts})")
        last_ts = ts
        ph = event["ph"]
        if ph == "B":
            if event["name"] != "pkt" and not stack:
                fail(errors, path,
                     f"track {key}: '{event['name']}' opened outside pkt")
            stack.append(event["name"])
        elif ph == "E":
            if not stack:
                fail(errors, path,
                     f"track {key}: E '{event['name']}' with nothing open")
            elif stack[-1] != event["name"]:
                fail(errors, path,
                     f"track {key}: E '{event['name']}' closes "
                     f"'{stack[-1]}'")
            else:
                stack.pop()
        elif ph == "i":
            if not stack:
                fail(errors, path,
                     f"track {key}: instant '{event['name']}' outside pkt")
    if stack and strict:
        fail(errors, path, f"track {key}: unclosed slices {stack}")


def validate_file(path, errors, strict):
    try:
        with open(path, encoding="utf-8") as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(errors, path, f"cannot load: {error}")
        return
    if not isinstance(document, dict) or "traceEvents" not in document:
        fail(errors, path, "missing top-level traceEvents array")
        return
    events = document["traceEvents"]
    if not isinstance(events, list):
        fail(errors, path, "traceEvents is not an array")
        return

    tracks = {}
    n_slices = 0
    for index, event in enumerate(events):
        ph = validate_event(event, index, path, errors)
        if ph in ("B", "E", "i"):
            tracks.setdefault((event["pid"], event["tid"]), []).append(event)
            n_slices += ph in ("B", "E")
    for key, track in sorted(tracks.items()):
        validate_track(key, track, path, errors, strict)
    print(f"{path}: {len(events)} events, {len(tracks)} packet tracks, "
          f"{n_slices} slice endpoints")


def main(argv):
    strict = "--strict" in argv
    paths = [a for a in argv if a != "--strict"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    errors = []
    for path in paths:
        validate_file(path, errors, strict)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} error(s)", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
