#!/usr/bin/env python3
"""Validate trace files emitted by the simulator.

Default mode — Chrome trace-event JSON from the obs:: layer:
  - top-level schema: {"traceEvents": [...]} with well-formed events
    (required keys per phase: M metadata, B/E duration slices, i instants);
  - per (pid, tid) track: timestamps are monotone non-decreasing in
    document order (the emission-order contract of obs::sort_trace);
  - per track: B/E events nest — every E closes the innermost open B of
    the same name, and instants only occur inside the packet slice.
Tracks whose packet was still in flight at the end of the run may leave
slices open; that is legal and reported only with --strict.

--workload mode — workload trace text (`cycle src dst size [tag]` per
line, the format src/workload parse_trace reads and write_trace emits):
  - every non-comment line has 4 or 5 unsigned-integer fields, size > 0,
    tag in {0, 1, 2};
  - cycles are monotone non-decreasing in file order;
  - with --terminals N, every src/dst is in [0, N).

Usage: trace_validate.py FILE... [--strict]
       trace_validate.py --workload [--terminals N] FILE...
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys

REQUIRED_COMMON = {"ph", "pid"}
DURATION_KEYS = {"name", "ts", "tid"}


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def validate_event(event, index, path, errors):
    """Schema check for one event; returns its phase or None."""
    if not isinstance(event, dict):
        fail(errors, path, f"event {index} is not an object")
        return None
    missing = REQUIRED_COMMON - event.keys()
    if missing:
        fail(errors, path, f"event {index} missing keys {sorted(missing)}")
        return None
    ph = event["ph"]
    if ph == "M":
        if event.get("name") != "process_name":
            fail(errors, path, f"event {index}: unexpected metadata {event}")
        return ph
    if ph in ("B", "E", "i"):
        missing = DURATION_KEYS - event.keys()
        if missing:
            fail(errors, path,
                 f"event {index} ({ph}) missing keys {sorted(missing)}")
            return None
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            fail(errors, path, f"event {index}: bad ts {event['ts']!r}")
        if ph == "i" and event.get("s") != "t":
            fail(errors, path, f"event {index}: instant without thread scope")
        return ph
    fail(errors, path, f"event {index}: unknown phase {ph!r}")
    return None


def validate_track(key, events, path, errors, strict):
    """Monotonicity and B/E nesting for one (pid, tid) track."""
    last_ts = -1
    stack = []  # open slice names, innermost last
    for event in events:
        ts = event["ts"]
        if ts < last_ts:
            fail(errors, path,
                 f"track {key}: ts runs backwards ({ts} after {last_ts})")
        last_ts = ts
        ph = event["ph"]
        if ph == "B":
            if event["name"] != "pkt" and not stack:
                fail(errors, path,
                     f"track {key}: '{event['name']}' opened outside pkt")
            stack.append(event["name"])
        elif ph == "E":
            if not stack:
                fail(errors, path,
                     f"track {key}: E '{event['name']}' with nothing open")
            elif stack[-1] != event["name"]:
                fail(errors, path,
                     f"track {key}: E '{event['name']}' closes "
                     f"'{stack[-1]}'")
            else:
                stack.pop()
        elif ph == "i":
            if not stack:
                fail(errors, path,
                     f"track {key}: instant '{event['name']}' outside pkt")
    if stack and strict:
        fail(errors, path, f"track {key}: unclosed slices {stack}")


def validate_file(path, errors, strict):
    try:
        with open(path, encoding="utf-8") as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(errors, path, f"cannot load: {error}")
        return
    if not isinstance(document, dict) or "traceEvents" not in document:
        fail(errors, path, "missing top-level traceEvents array")
        return
    events = document["traceEvents"]
    if not isinstance(events, list):
        fail(errors, path, "traceEvents is not an array")
        return

    tracks = {}
    n_slices = 0
    for index, event in enumerate(events):
        ph = validate_event(event, index, path, errors)
        if ph in ("B", "E", "i"):
            tracks.setdefault((event["pid"], event["tid"]), []).append(event)
            n_slices += ph in ("B", "E")
    for key, track in sorted(tracks.items()):
        validate_track(key, track, path, errors, strict)
    print(f"{path}: {len(events)} events, {len(tracks)} packet tracks, "
          f"{n_slices} slice endpoints")


def validate_workload_file(path, terminals, errors):
    """Line format, cycle monotonicity, and terminal range for one
    workload trace text file."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as error:
        fail(errors, path, f"cannot load: {error}")
        return
    records = 0
    last_cycle = -1
    for number, raw in enumerate(lines, start=1):
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        fields = text.split()
        if len(fields) not in (4, 5):
            fail(errors, path,
                 f"line {number}: expected `cycle src dst size [tag]`, "
                 f"got {len(fields)} fields")
            continue
        try:
            values = [int(field) for field in fields]
        except ValueError:
            fail(errors, path,
                 f"line {number}: non-integer field in {fields}")
            continue
        if any(value < 0 for value in values):
            fail(errors, path, f"line {number}: negative field in {fields}")
            continue
        cycle, src, dst, size = values[:4]
        tag = values[4] if len(values) == 5 else 0
        if size == 0:
            fail(errors, path, f"line {number}: size must be positive")
        if tag not in (0, 1, 2):
            fail(errors, path,
                 f"line {number}: tag {tag} is not 0 (none), 1 (request) "
                 f"or 2 (reply)")
        if cycle < last_cycle:
            fail(errors, path,
                 f"line {number}: cycle {cycle} runs backwards (previous "
                 f"record was at cycle {last_cycle})")
        last_cycle = max(last_cycle, cycle)
        if terminals is not None:
            for role, terminal in (("src", src), ("dst", dst)):
                if terminal >= terminals:
                    fail(errors, path,
                         f"line {number}: {role} {terminal} out of range "
                         f"(fabric has {terminals} terminals)")
        records += 1
    print(f"{path}: {records} workload records"
          + (f", terminals < {terminals}" if terminals is not None else ""))


def main(argv):
    strict = "--strict" in argv
    workload = "--workload" in argv
    args = [a for a in argv if a not in ("--strict", "--workload")]
    terminals = None
    if "--terminals" in args:
        at = args.index("--terminals")
        try:
            terminals = int(args[at + 1])
        except (IndexError, ValueError):
            print("error: --terminals needs an integer", file=sys.stderr)
            return 1
        del args[at:at + 2]
    paths = args
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    errors = []
    for path in paths:
        if workload:
            validate_workload_file(path, terminals, errors)
        else:
            validate_file(path, errors, strict)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} error(s)", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
