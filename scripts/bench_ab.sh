#!/usr/bin/env bash
# A/B benchmark capture robust to CPU-performance drift: run the OLD and
# NEW binary of each bench in alternating rounds, then keep, per
# benchmark, the fastest median across rounds (throttle noise only ever
# slows a round down, so min-of-medians converges on the machine's true
# speed for both sides under the same conditions).
#
# Usage: scripts/bench_ab.sh OLD_BUILD_DIR NEW_BUILD_DIR OLD_OUT NEW_OUT \
#          [rounds] [bench names...]
# Writes OLD_OUT/BENCH_<name>.json and NEW_OUT/BENCH_<name>.json.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
old_build="$1"; new_build="$2"; old_out="$3"; new_out="$4"
rounds="${5:-3}"
shift 5 || shift $#
benches=("$@")
if [[ ${#benches[@]} -eq 0 ]]; then
  benches=(bench_sim bench_wormhole bench_equivalence)
fi

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT
mkdir -p "${old_out}" "${new_out}"

for bench in "${benches[@]}"; do
  for round in $(seq 1 "${rounds}"); do
    for side in old new; do
      build_dir="${old_build}"; [[ ${side} == new ]] && build_dir="${new_build}"
      out="${tmp}/${bench}-${side}-${round}.json"
      echo "== ${bench} ${side} round ${round}"
      "${build_dir}/${bench}" \
        --benchmark_out="${out}" --benchmark_out_format=json \
        --benchmark_min_time=0.05 --benchmark_repetitions=5 \
        --benchmark_report_aggregates_only=true > /dev/null
    done
  done
  name="${bench#bench_}"
  python3 "${repo_root}/scripts/bench_merge_min.py" \
    "${old_out}/BENCH_${name}.json" "${tmp}/${bench}-old-"*.json
  python3 "${repo_root}/scripts/bench_merge_min.py" \
    "${new_out}/BENCH_${name}.json" "${tmp}/${bench}-new-"*.json
done
