#!/usr/bin/env python3
"""Diff two google-benchmark JSON outputs and fail on regressions.

Compares benchmarks that appear in both inputs by name (per-iteration
real_time, normalized to nanoseconds) and exits non-zero if any common
benchmark slowed down by more than the threshold (default 10%).

Usage:
  scripts/bench_compare.py OLD.json NEW.json [--threshold 0.10]
  scripts/bench_compare.py OLD_DIR NEW_DIR  [--threshold 0.10]

Directory mode pairs files by name (BENCH_*.json); files present on only
one side are reported and skipped. Intended for trajectory tracking: the
committed bench/baselines/* snapshots are the fixed points, CI runs the
comparison informationally (benchmark machines are noisy — treat a CI
failure as a prompt to measure properly, not as proof of a regression).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path: Path) -> dict[str, float]:
    """Map benchmark name -> real_time in ns for one JSON file.

    Prefers the median aggregate when the run used
    --benchmark_repetitions (medians resist the scheduling noise that
    makes single samples flip across a 10% threshold); falls back to the
    plain per-benchmark sample otherwise.
    """
    with path.open() as handle:
        data = json.load(handle)
    samples: dict[str, float] = {}
    medians: dict[str, float] = {}
    for entry in data.get("benchmarks", []):
        unit = _UNIT_NS.get(entry.get("time_unit", "ns"))
        if unit is None or "real_time" not in entry:
            continue
        value = float(entry["real_time"]) * unit
        if entry.get("run_type", "iteration") == "aggregate":
            if entry.get("aggregate_name") == "median":
                name = entry["name"]
                suffix = "_median"
                if name.endswith(suffix):
                    name = name[: -len(suffix)]
                medians[name] = value
        else:
            samples[entry["name"]] = value
    samples.update(medians)
    return samples


def fmt_ns(ns: float) -> str:
    for bound, unit in ((1e9, "s"), (1e6, "ms"), (1e3, "us")):
        if ns >= bound:
            return f"{ns / bound:.3g} {unit}"
    return f"{ns:.3g} ns"


def compare_files(old_path: Path, new_path: Path,
                  threshold: float) -> tuple[int, int]:
    """Print the per-benchmark table; return (compared, regressed)."""
    old = load_benchmarks(old_path)
    new = load_benchmarks(new_path)
    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    print(f"== {old_path.name} -> {new_path.name} "
          f"({len(common)} common benchmarks)")
    regressed = 0
    width = max((len(name) for name in common), default=0)
    for name in common:
        ratio = new[name] / old[name] if old[name] > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSED"
            regressed += 1
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        print(f"  {name:<{width}}  {fmt_ns(old[name]):>10} -> "
              f"{fmt_ns(new[name]):>10}  {ratio:6.2f}x  {verdict}")
    for name in only_old:
        print(f"  {name}: only in {old_path.name} (skipped)")
    for name in only_new:
        print(f"  {name}: only in {new_path.name} (skipped)")
    return len(common), regressed


def pair_inputs(old: Path, new: Path) -> list[tuple[Path, Path]]:
    if old.is_file() and new.is_file():
        return [(old, new)]
    if old.is_dir() and new.is_dir():
        pairs = []
        for old_file in sorted(old.glob("BENCH_*.json")):
            new_file = new / old_file.name
            if new_file.is_file():
                pairs.append((old_file, new_file))
            else:
                print(f"  {old_file.name}: missing from {new} (skipped)")
        return pairs
    sys.exit("bench_compare: OLD and NEW must both be files or both be "
             "directories")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff google-benchmark JSON results.")
    parser.add_argument("old", type=Path, help="baseline JSON file or dir")
    parser.add_argument("new", type=Path, help="candidate JSON file or dir")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed slowdown fraction (default 0.10)")
    args = parser.parse_args()

    pairs = pair_inputs(args.old, args.new)
    if not pairs:
        sys.exit("bench_compare: nothing to compare")
    total = regressed = 0
    for old_file, new_file in pairs:
        compared, bad = compare_files(old_file, new_file, args.threshold)
        total += compared
        regressed += bad
    print(f"== {total} benchmarks compared, {regressed} regressed more than "
          f"{args.threshold:.0%}")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
