#!/usr/bin/env bash
# Configure, build, and run the full mineq test suite in one command —
# the tier-1 verify from ROADMAP.md.
#
# Usage: scripts/check.sh [build-dir] [extra cmake args...]
# Env:   MINEQ_TEST_SEED  base seed for randomized suites (default: fixed)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# First argument is the build dir only if it isn't a cmake flag;
# everything else passes through to the configure step.
build_dir="build"
if [[ $# -gt 0 && $1 != -* ]]; then
  build_dir="$1"
  shift
fi
case "${build_dir}" in
  /*) ;;
  *) build_dir="${repo_root}/${build_dir}" ;;
esac

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" "$@"
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
