#!/usr/bin/env python3
"""Merge several google-benchmark JSON files by per-benchmark minimum.

Usage: bench_merge_min.py OUT.json ROUND1.json [ROUND2.json ...]

Keeps, for every benchmark median (or plain sample) name, the fastest
real_time across the input rounds, normalized to nanoseconds. Used by
scripts/bench_ab.sh: CPU-performance drift only ever slows a round down,
so the minimum across alternating rounds approximates the machine's true
speed for both sides of an A/B comparison. The output carries only the
merged medians (context is taken from the first input).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def medians(path: Path) -> dict[str, float]:
    with path.open() as handle:
        data = json.load(handle)
    out: dict[str, float] = {}
    for entry in data.get("benchmarks", []):
        unit = _UNIT_NS.get(entry.get("time_unit", "ns"))
        if unit is None or "real_time" not in entry:
            continue
        if entry.get("run_type", "iteration") == "aggregate":
            if entry.get("aggregate_name") != "median":
                continue
            name = entry["name"]
            name = name.removesuffix("_median")
        else:
            name = entry["name"]
        out[name] = float(entry["real_time"]) * unit
    return out


def main() -> int:
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    out_path = Path(sys.argv[1])
    rounds = [Path(p) for p in sys.argv[2:]]
    best: dict[str, float] = {}
    for path in rounds:
        for name, value in medians(path).items():
            if name not in best or value < best[name]:
                best[name] = value
    with rounds[0].open() as handle:
        context = json.load(handle).get("context", {})
    merged = {
        "context": context,
        "benchmarks": [
            {
                "name": name,
                "run_type": "aggregate",
                "aggregate_name": "median",
                "real_time": value,
                "cpu_time": value,
                "time_unit": "ns",
            }
            for name, value in sorted(best.items())
        ],
    }
    with out_path.open("w") as handle:
        json.dump(merged, handle, indent=1)
        handle.write("\n")
    print(f"{out_path}: min-merged {len(best)} benchmarks "
          f"from {len(rounds)} rounds")
    return 0


if __name__ == "__main__":
    return_code = main()
    sys.exit(return_code)
