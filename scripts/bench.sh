#!/usr/bin/env bash
# Run every bench_* binary and capture its google-benchmark results as
# JSON (BENCH_<name>.json), keeping the human-readable report + console
# table on stdout. The JSON goes through --benchmark_out so it is never
# mixed with the report text.
#
# Usage: scripts/bench.sh [build-dir] [extra benchmark args...]
#        scripts/bench.sh build --benchmark_min_time=0.01   # quick pass
# Env:   BENCH_OUT_DIR   where the BENCH_*.json files land (default: .)
#        BENCH_FILTER    glob over binary names (default: bench_*)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

build_dir="build"
if [[ $# -gt 0 && $1 != -* ]]; then
  build_dir="$1"
  shift
fi
case "${build_dir}" in
  /*) ;;
  *) build_dir="${repo_root}/${build_dir}" ;;
esac

out_dir="${BENCH_OUT_DIR:-${repo_root}}"
mkdir -p "${out_dir}"
filter="${BENCH_FILTER:-bench_*}"

found=0
for bin in "${build_dir}"/${filter}; do
  [[ -x ${bin} && -f ${bin} ]] || continue
  found=1
  name="$(basename "${bin}")"
  json="${out_dir}/BENCH_${name#bench_}.json"
  echo "=== ${name} -> ${json}"
  "${bin}" --benchmark_out="${json}" --benchmark_out_format=json "$@"
done

if [[ ${found} -eq 0 ]]; then
  echo "scripts/bench.sh: no ${filter} binaries in ${build_dir} — build first:" >&2
  echo "  cmake -B ${build_dir} -S ${repo_root} && cmake --build ${build_dir} -j" >&2
  exit 1
fi
